#ifndef STREAMAD_OBS_QUANTILE_SKETCH_H_
#define STREAMAD_OBS_QUANTILE_SKETCH_H_

#include <array>
#include <cstdint>
#include <mutex>

namespace streamad::obs {

/// Single-quantile P² estimator (Jain & Chlamtac, CACM 1985): five markers
/// track {min, q/2, q, (1+q)/2, max} and are nudged by one position per
/// observation with a piecewise-parabolic height update. O(1) memory and
/// O(1) per observation, no allocation after construction. Exact (sorted
/// interpolation) until the fifth observation.
class P2Quantile {
 public:
  /// `quantile` must be in (0, 1).
  explicit P2Quantile(double quantile);

  void Observe(double value);

  /// Current estimate; 0 before any observation, exact below 5 samples.
  double Value() const;

  /// Discards all marker state, as if freshly constructed for the same
  /// quantile rank.
  void Reset();

  std::uint64_t count() const { return count_; }

 private:
  double quantile_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};   // marker heights q_i
  std::array<double, 5> positions_{}; // marker positions n_i (1-based)
  std::array<double, 5> desired_{};   // desired positions n'_i
  std::array<double, 5> increments_{};
};

/// Fixed battery of P² estimators for the latency quantiles the paper's
/// runtime analysis cares about (p50/p90/p99/p999), plus exact count, sum,
/// min and max. All state is O(1); `Observe` takes an internal mutex —
/// unlike the sharded `Histogram`, P² marker state cannot be merged across
/// shards, so concurrent recorders writing the same named sketch serialise
/// on it (a handful of ns next to the observed stage latencies).
class QuantileSketch {
 public:
  /// `sample_every` > 1 subsamples the P² marker updates: count, sum, min
  /// and max stay exact for every observation, but only every Nth value
  /// (deterministically, by observation index) feeds the quantile
  /// estimators. The markers then estimate the quantiles of an unbiased
  /// 1-in-N slice of the stream — statistically interchangeable for the
  /// i.i.d.-ish latency streams this is used on — at ~1/N of the marker
  /// arithmetic. The serving hot path uses this for its per-shard
  /// summaries; the default (1) keeps every observation.
  explicit QuantileSketch(std::uint32_t sample_every = 1);
  QuantileSketch(const QuantileSketch&) = delete;
  QuantileSketch& operator=(const QuantileSketch&) = delete;

  void Observe(double value);

  /// Drops every estimator back to its empty state (count 0, zero sum /
  /// min / max). Scrape-and-reset windows (a fleet operator zeroing the
  /// per-shard summaries between load phases) rely on `Snap` and `Reset`
  /// being individually atomic against concurrent `Observe`s: an
  /// observation lands entirely in the window before the reset or
  /// entirely in the one after, never half-applied.
  void Reset();

  static constexpr std::size_t kNumQuantiles = 4;
  /// The tracked quantile ranks, ascending: 0.5, 0.9, 0.99, 0.999.
  static const std::array<double, kNumQuantiles>& Quantiles();

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // valid when count > 0
    double max = 0.0;  // valid when count > 0
    /// Estimates aligned with `Quantiles()`.
    std::array<double, kNumQuantiles> values{};

    double p50() const { return values[0]; }
    double p90() const { return values[1]; }
    double p99() const { return values[2]; }
    double p999() const { return values[3]; }
  };
  Snapshot Snap() const;

 private:
  mutable std::mutex mutex_;
  std::array<P2Quantile, kNumQuantiles> estimators_;
  std::uint32_t sample_every_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace streamad::obs

#endif  // STREAMAD_OBS_QUANTILE_SKETCH_H_
