#ifndef STREAMAD_OBS_STAGE_H_
#define STREAMAD_OBS_STAGE_H_

#include <cstdint>

namespace streamad::obs {

/// The span taxonomy of one served event: the ingress queue wait, the six
/// pipeline stages of the paper's per-step loop, and the initial model
/// fit. Each stage owns one wall-clock histogram `streamad_stage_<name>_ns`
/// and one quantile sketch `streamad_stage_<name>_ns_summary`.
enum class Stage : std::uint8_t {
  kQueueWait = 0,       // enqueue -> dequeue on a fleet shard (serving only)
  kRepresentation,      // window Observe + feature materialisation
  kNonconformity,       // a_t = A(x_t, θ) — includes the model Predict
  kScoring,             // f_t = F(a_{t-k+1..t})
  kTrainOffer,          // Task-1 strategy Offer (R_train update)
  kDriftCheck,          // Task-2 Observe + ShouldFinetune
  kFinetune,            // model.Finetune + drift reference snapshot
  kFit,                 // the one-off initial model fit
};

inline constexpr std::size_t kNumStages = 8;

/// Short stable identifier, e.g. "drift_check" (metric and trace key).
const char* StageName(Stage stage);

}  // namespace streamad::obs

#endif  // STREAMAD_OBS_STAGE_H_
