#ifndef STREAMAD_OBS_RECORDER_H_
#define STREAMAD_OBS_RECORDER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "src/common/op_counters.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/score_analytics.h"
#include "src/obs/stage.h"
#include "src/obs/timer.h"

namespace streamad::obs {

/// Per-run aggregate of one recorder: where the run's wall-clock went.
struct StageTotals {
  std::array<std::uint64_t, kNumStages> ns{};      // total per stage
  std::array<std::uint64_t, kNumStages> spans{};   // span count per stage
  std::uint64_t steps = 0;
  std::uint64_t scored_steps = 0;
  std::uint64_t finetunes = 0;
  std::uint64_t fits = 0;

  std::uint64_t StageNs(Stage stage) const {
    return ns[static_cast<std::size_t>(stage)];
  }
  std::uint64_t StageSpans(Stage stage) const {
    return spans[static_cast<std::size_t>(stage)];
  }
  /// Sum over all stages (≈ instrumented wall-clock of the run).
  std::uint64_t TotalNs() const;
};

/// Serialised JSONL sink. One instance may be shared by many recorders
/// (the parallel sweep); `Write` appends one line under a mutex.
class TraceSink {
 public:
  /// The sink does not own `out`; it must outlive the sink.
  explicit TraceSink(std::ostream* out);

  void Write(const std::string& line);

  /// Lines written so far (drives downstream sampling diagnostics).
  std::uint64_t lines() const { return lines_.Value(); }

 private:
  std::ostream* out_;
  std::mutex mutex_;
  Counter lines_;
};

struct RecorderOptions {
  /// Structured-trace sink; null disables per-step JSONL records.
  TraceSink* trace = nullptr;
  /// Emit every Nth scored step into the trace (1 = every step). Steps
  /// that trigger a fine-tune are always emitted regardless of sampling —
  /// they are the events drift analyses need.
  std::size_t trace_sample_every = 1;
  /// Optional run label stamped into every trace record (`"run":...`),
  /// e.g. the Table I algorithm label.
  std::string label;
  /// Flight recorder ring capacity: retain the last N steps of full
  /// pipeline state (0 disables the flight recorder entirely).
  std::size_t flight_capacity = 0;
  /// Dump path for the flight recorder. A non-empty path registers the
  /// ring for `STREAMAD_CHECK`-failure crash dumps and (by default) dumps
  /// it after every finetune event.
  std::string flight_dump_path;
  /// Rewrite `flight_dump_path` whenever a step fine-tunes, so the file
  /// always holds the pipeline state around the most recent drift event.
  bool flight_dump_on_finetune = true;
  /// Attach detection-quality analytics (score quantiles, EWMA baseline,
  /// anomaly rate/log, drift gauge) updated on every step. Read back via
  /// `Recorder::score_analytics()`.
  bool score_analytics = false;
  /// Tuning for the analytics when attached.
  ScoreAnalyticsOptions analytics;
};

/// Extra per-step pipeline state for the flight recorder, passed to
/// `Recorder::EndStep`. The detector only computes these when a flight
/// recorder is attached (`Recorder::flight_enabled()`); the defaults keep
/// plain telemetry callers unchanged.
struct StepContext {
  double input_min = 0.0;
  double input_max = 0.0;
  double input_mean = 0.0;
  /// Task-2 drift-detector statistic (`DriftDetector::DriftStatistic()`).
  double drift_statistic = 0.0;
  /// |R_train| after the step's Offer.
  std::uint64_t train_size = 0;
};

/// Per-detector telemetry front-end. A recorder belongs to exactly one
/// `core::StreamingDetector` and is driven from that detector's thread;
/// the registry and trace sink behind it are shared and thread-safe, so
/// parallel sweeps attach one recorder per run to one registry.
///
/// Attaching a recorder never changes detector arithmetic — it only reads
/// the clock and tallies. Detector output with and without a recorder is
/// bit-identical (tested in tests/obs_test.cc).
class Recorder {
 public:
  /// `registry` must outlive the recorder. Instruments are resolved once
  /// here; the hot path never touches the registry mutex.
  explicit Recorder(MetricsRegistry* registry, RecorderOptions options = {});

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// --- called by the detector pipeline -------------------------------
  void BeginStep(std::int64_t t);
  void RecordStage(Stage stage, std::uint64_t elapsed_ns);
  /// Called by the serving layer (fleet shard worker) just before the
  /// `Step` that consumes a queued event: feeds the `queue_wait` stage
  /// instruments immediately and holds the value pending so `BeginStep`
  /// attributes it to that step's trace / flight record — ingress wait and
  /// compute stages then decompose one event end to end.
  void RecordQueueWait(std::uint64_t elapsed_ns);
  void OnFit();
  void EndStep(std::int64_t t, bool scored, double nonconformity,
               double anomaly_score, bool finetuned,
               const StepContext& context = {});

  /// Table II op tallies; the detector attaches this to its drift
  /// detector so per-step deltas are mirrored into the registry counters.
  OpCounters* op_counters() { return &op_counters_; }

  /// --- read side ------------------------------------------------------
  const StageTotals& totals() const { return totals_; }
  MetricsRegistry* registry() const { return registry_; }

  /// True when a flight recorder ring is attached.
  bool flight_enabled() const { return flight_ != nullptr; }
  FlightRecorder* flight_recorder() { return flight_.get(); }
  const FlightRecorder* flight_recorder() const { return flight_.get(); }

  /// True when score analytics are attached.
  bool analytics_enabled() const { return analytics_ != nullptr; }
  ScoreAnalytics* score_analytics() { return analytics_.get(); }
  const ScoreAnalytics* score_analytics() const { return analytics_.get(); }

  /// True when some consumer (flight ring or score analytics) retains the
  /// per-step `StepContext`; the detector uses this to skip computing the
  /// input digest and drift statistic when nobody keeps them.
  bool wants_step_context() const {
    return flight_ != nullptr || analytics_ != nullptr;
  }

  /// Latency histogram bucket upper bounds (nanoseconds) shared by every
  /// stage histogram.
  static const std::vector<double>& LatencyBucketsNs();

 private:
  MetricsRegistry* registry_;
  RecorderOptions options_;

  std::array<Histogram*, kNumStages> stage_ns_;
  std::array<QuantileSketch*, kNumStages> stage_ns_sketch_;
  Counter* steps_total_;
  Counter* scored_steps_total_;
  Counter* finetunes_total_;
  Counter* fits_total_;
  Counter* anomalies_total_;
  Counter* op_additions_total_;
  Counter* op_multiplications_total_;
  Counter* op_comparisons_total_;

  OpCounters op_counters_;
  OpCounters mirrored_ops_;  // high-water mark already forwarded

  StageTotals totals_;
  std::array<std::uint64_t, kNumStages> step_ns_{};  // scratch, one step
  std::uint64_t pending_queue_wait_ns_ = 0;  // claimed by the next BeginStep
  std::uint64_t sample_cursor_ = 0;

  std::unique_ptr<FlightRecorder> flight_;
  FlightRecord flight_scratch_;  // reused per step, no allocation
  std::unique_ptr<ScoreAnalytics> analytics_;
};

/// RAII stage span: measures one pipeline stage of one step and reports it
/// to the recorder. Null recorder = fully inert (no clock read).
class StageSpan {
 public:
  StageSpan(Recorder* recorder, Stage stage)
      : recorder_(recorder),
        stage_(stage),
        start_ns_(recorder ? NowNs() : 0) {}
  ~StageSpan() {
    if (recorder_ != nullptr) {
      recorder_->RecordStage(stage_, NowNs() - start_ns_);
    }
  }
  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

 private:
  Recorder* recorder_;
  Stage stage_;
  std::uint64_t start_ns_;
};

}  // namespace streamad::obs

#endif  // STREAMAD_OBS_RECORDER_H_
