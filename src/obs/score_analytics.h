#ifndef STREAMAD_OBS_SCORE_ANALYTICS_H_
#define STREAMAD_OBS_SCORE_ANALYTICS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/quantile_sketch.h"

namespace streamad::obs {

struct ScoreAnalyticsOptions {
  /// EWMA smoothing factor for the running score mean/variance. Small
  /// values track slowly (long memory); the default weights roughly the
  /// last ~50 scored steps.
  double ewma_alpha = 0.02;
  /// A scored step is logged as an anomaly when its score exceeds
  /// `ewma_mean + threshold_sigma * ewma_std` (self-calibrating), unless
  /// an absolute threshold is configured below.
  double threshold_sigma = 3.0;
  /// When true, `absolute_threshold` replaces the EWMA sigma rule — for
  /// detectors whose score already has a calibrated meaning (e.g. a
  /// conformal p-value or a known nonconformity cutoff).
  bool use_absolute_threshold = false;
  double absolute_threshold = 0.0;
  /// Scored steps to observe before the sigma rule may flag anything;
  /// the EWMA baseline is meaningless until it has seen some scores.
  /// Ignored by the absolute-threshold rule.
  std::uint64_t warmup_scored_steps = 32;
  /// Sliding window (in scored steps) over which `anomaly_rate` is
  /// computed. Fixed at construction; backs a preallocated ring.
  std::size_t rate_window = 256;
  /// Capacity of the recent-anomaly ring ("anomaly log").
  std::size_t anomaly_log_capacity = 32;
  /// 1-in-N subsampling for the score quantile sketch: only every Nth
  /// scored step is observed by the sketch at all, so the non-sampled
  /// steps skip the sketch's internal mutex entirely — the count / sum /
  /// min / max it reports then describe the sampled slice, not every
  /// score. Quantile estimates stay unbiased for i.i.d.-ish score
  /// streams. The default (1) keeps the sketch exact; the serve path
  /// lowers it (`serve::DefaultServeAnalytics`) to hold the
  /// attribution-cost budget.
  std::uint32_t score_sample_every = 1;
};

/// One retained threshold crossing: when, how anomalous, and a digest of
/// the input that caused it.
struct AnomalyLogEntry {
  std::int64_t t = 0;
  double score = 0.0;
  /// The threshold in force when the crossing was flagged.
  double threshold = 0.0;
  double input_min = 0.0;
  double input_max = 0.0;
  double input_mean = 0.0;
};

/// Everything the detector pipeline knows about one step, flattened for
/// the analytics update. Producers fill only what they have; `scored`
/// gates all score-derived state.
struct ScoreStep {
  std::int64_t t = 0;
  bool scored = false;
  bool finetuned = false;
  double anomaly_score = 0.0;
  /// Cached Task-2 statistic (`DriftDetector::DriftStatistic()`).
  double drift_statistic = 0.0;
  double input_min = 0.0;
  double input_max = 0.0;
  double input_mean = 0.0;
  /// |R_train| after the step's Offer.
  std::uint64_t train_size = 0;
};

/// Point-in-time copy of one session's quality state, safe to serialise
/// after the lock is dropped.
struct ScoreAnalyticsSnapshot {
  std::uint64_t steps = 0;
  std::uint64_t scored_steps = 0;
  std::uint64_t finetunes = 0;
  /// Total threshold crossings since construction (or the last Reset).
  std::uint64_t anomalies = 0;
  /// Crossings / scored steps over the trailing `rate_window`; 0 until
  /// the first scored step.
  double anomaly_rate = 0.0;
  double ewma_mean = 0.0;
  double ewma_std = 0.0;
  double last_score = 0.0;
  /// Threshold in force for the *next* scored step; 0 while the sigma
  /// rule is still warming up.
  double last_threshold = 0.0;
  double drift_statistic = 0.0;
  std::uint64_t train_size = 0;
  std::int64_t last_step_t = 0;
  QuantileSketch::Snapshot score_quantiles;
  /// Oldest-first, at most `anomaly_log_capacity` entries.
  std::vector<AnomalyLogEntry> recent_anomalies;
};

/// Per-session detection-quality analytics: score quantiles (P²), EWMA
/// score mean/variance, a windowed anomaly-rate counter, the drift
/// statistic gauge, finetune counts, and a bounded ring of recent
/// threshold crossings.
///
/// The write side (`OnStep`) is allocation-free after construction and
/// belongs to exactly one thread at a time — the detector's (library
/// path, fed by `Recorder::EndStep`) or the owning shard worker's (serve
/// path, fed by the fleet). The read side (`Snap`) may run concurrently
/// from the HTTP plane; a mutex covers the handoff. Analytics never feed
/// back into detector arithmetic: scores in == bits unchanged out.
///
/// Lifecycle matches the fleet's Session: the instance survives session
/// eviction (only the detector is torn down) so totals and the anomaly
/// log span rehydrations; `Reset` recycles the state in place for reuse
/// without reallocating the rings.
class ScoreAnalytics {
 public:
  explicit ScoreAnalytics(ScoreAnalyticsOptions options = {});

  ScoreAnalytics(const ScoreAnalytics&) = delete;
  ScoreAnalytics& operator=(const ScoreAnalytics&) = delete;

  /// Folds one step in. Returns true when the step was scored and its
  /// score crossed the threshold in force *before* this step's score was
  /// folded into the EWMA baseline (so one outlier cannot mask itself).
  bool OnStep(const ScoreStep& step);

  /// Drops all state back to as-constructed, keeping every allocation
  /// (rings, sketch markers) for reuse.
  void Reset();

  ScoreAnalyticsSnapshot Snap() const;

  const ScoreAnalyticsOptions& options() const { return options_; }

 private:
  ScoreAnalyticsOptions options_;

  mutable std::mutex mutex_;
  std::uint64_t steps_ = 0;
  std::uint64_t scored_steps_ = 0;
  std::uint64_t finetunes_ = 0;
  std::uint64_t anomalies_ = 0;
  double ewma_mean_ = 0.0;
  double ewma_var_ = 0.0;
  double last_score_ = 0.0;
  double last_threshold_ = 0.0;
  double drift_statistic_ = 0.0;
  std::uint64_t train_size_ = 0;
  std::int64_t last_step_t_ = 0;

  // Trailing-window anomaly rate: one flag byte per scored step,
  // preallocated to `rate_window`.
  std::vector<std::uint8_t> rate_ring_;
  std::size_t rate_cursor_ = 0;
  std::size_t rate_filled_ = 0;
  std::uint64_t window_anomalies_ = 0;

  // Anomaly log ring, preallocated to `anomaly_log_capacity`.
  std::vector<AnomalyLogEntry> log_;
  std::size_t log_cursor_ = 0;
  std::uint64_t log_total_ = 0;

  QuantileSketch score_sketch_;
};

}  // namespace streamad::obs

#endif  // STREAMAD_OBS_SCORE_ANALYTICS_H_
