#include "src/obs/recorder.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "src/common/check.h"

namespace streamad::obs {
namespace {

constexpr const char* kStageNames[kNumStages] = {
    "queue_wait",  "representation", "nonconformity", "scoring",
    "train_offer", "drift_check",    "finetune",      "fit",
};

std::string StageHistogramName(Stage stage) {
  return std::string("streamad_stage_") + StageName(stage) + "_ns";
}

std::string StageSketchName(Stage stage) {
  return StageHistogramName(stage) + "_summary";
}

void AppendF(std::string* out, const char* format, ...) {
  char buffer[128];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  out->append(buffer);
}

}  // namespace

const char* StageName(Stage stage) {
  const std::size_t index = static_cast<std::size_t>(stage);
  STREAMAD_CHECK(index < kNumStages);
  return kStageNames[index];
}

std::uint64_t StageTotals::TotalNs() const {
  std::uint64_t total = 0;
  for (const std::uint64_t stage_ns : ns) total += stage_ns;
  return total;
}

TraceSink::TraceSink(std::ostream* out) : out_(out) {
  STREAMAD_CHECK(out != nullptr);
}

void TraceSink::Write(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  *out_ << line << '\n';
  lines_.Increment();
}

const std::vector<double>& Recorder::LatencyBucketsNs() {
  // Quasi-logarithmic 100ns .. 1s: fine enough to separate a cheap window
  // push (sub-µs) from a neural fine-tune (ms..s) in one shared layout.
  static const std::vector<double> buckets = {
      100.0, 250.0, 500.0, 1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5,
      2.5e5, 5e5,   1e6,   2.5e6, 5e6, 1e7, 5e7, 1e8,   5e8, 1e9,
  };
  return buckets;
}

Recorder::Recorder(MetricsRegistry* registry, RecorderOptions options)
    : registry_(registry), options_(std::move(options)) {
  STREAMAD_CHECK(registry != nullptr);
  STREAMAD_CHECK_MSG(options_.trace_sample_every > 0,
                     "trace_sample_every must be >= 1");
  for (std::size_t i = 0; i < kNumStages; ++i) {
    stage_ns_[i] = registry->GetHistogram(
        StageHistogramName(static_cast<Stage>(i)), LatencyBucketsNs());
    stage_ns_sketch_[i] = registry->GetSketch(StageSketchName(static_cast<Stage>(i)));
  }
  if (options_.flight_capacity > 0) {
    flight_ = std::make_unique<FlightRecorder>(options_.flight_capacity);
    flight_->set_label(options_.label);
    if (!options_.flight_dump_path.empty()) {
      flight_->set_dump_path(options_.flight_dump_path);
    }
  }
  if (options_.score_analytics) {
    analytics_ = std::make_unique<ScoreAnalytics>(options_.analytics);
  }
  steps_total_ = registry->GetCounter("streamad_detector_steps_total");
  scored_steps_total_ =
      registry->GetCounter("streamad_detector_scored_steps_total");
  finetunes_total_ = registry->GetCounter("streamad_detector_finetunes_total");
  fits_total_ = registry->GetCounter("streamad_detector_fits_total");
  anomalies_total_ =
      registry->GetCounter("streamad_detector_anomalies_total");
  op_additions_total_ =
      registry->GetCounter("streamad_drift_op_additions_total");
  op_multiplications_total_ =
      registry->GetCounter("streamad_drift_op_multiplications_total");
  op_comparisons_total_ =
      registry->GetCounter("streamad_drift_op_comparisons_total");
}

void Recorder::BeginStep(std::int64_t /*t*/) {
  step_ns_.fill(0);
  // Queue wait recorded since the last step belongs to THIS step: the
  // fleet stamps it right before calling `Step` on the dequeued event.
  step_ns_[static_cast<std::size_t>(Stage::kQueueWait)] =
      pending_queue_wait_ns_;
  pending_queue_wait_ns_ = 0;
  steps_total_->Increment();
  ++totals_.steps;
}

void Recorder::RecordStage(Stage stage, std::uint64_t elapsed_ns) {
  const std::size_t index = static_cast<std::size_t>(stage);
  stage_ns_[index]->Observe(static_cast<double>(elapsed_ns));
  stage_ns_sketch_[index]->Observe(static_cast<double>(elapsed_ns));
  step_ns_[index] += elapsed_ns;
  totals_.ns[index] += elapsed_ns;
  ++totals_.spans[index];
}

void Recorder::RecordQueueWait(std::uint64_t elapsed_ns) {
  const std::size_t index = static_cast<std::size_t>(Stage::kQueueWait);
  stage_ns_[index]->Observe(static_cast<double>(elapsed_ns));
  stage_ns_sketch_[index]->Observe(static_cast<double>(elapsed_ns));
  totals_.ns[index] += elapsed_ns;
  ++totals_.spans[index];
  pending_queue_wait_ns_ += elapsed_ns;
}

void Recorder::OnFit() {
  fits_total_->Increment();
  ++totals_.fits;
}

void Recorder::EndStep(std::int64_t t, bool scored, double nonconformity,
                       double anomaly_score, bool finetuned,
                       const StepContext& context) {
  if (scored) {
    scored_steps_total_->Increment();
    ++totals_.scored_steps;
  }
  if (finetuned) {
    finetunes_total_->Increment();
    ++totals_.finetunes;
  }

  // Mirror the drift detector's Table II tallies into the registry as
  // monotonic counters (delta since the last step).
  op_additions_total_->Add(op_counters_.additions - mirrored_ops_.additions);
  op_multiplications_total_->Add(op_counters_.multiplications -
                                 mirrored_ops_.multiplications);
  op_comparisons_total_->Add(op_counters_.comparisons -
                             mirrored_ops_.comparisons);
  mirrored_ops_ = op_counters_;

  if (analytics_ != nullptr) {
    ScoreStep sample;
    sample.t = t;
    sample.scored = scored;
    sample.finetuned = finetuned;
    sample.anomaly_score = scored ? anomaly_score : 0.0;
    sample.drift_statistic = context.drift_statistic;
    sample.input_min = context.input_min;
    sample.input_max = context.input_max;
    sample.input_mean = context.input_mean;
    sample.train_size = context.train_size;
    if (analytics_->OnStep(sample)) anomalies_total_->Increment();
  }

  if (flight_ != nullptr) {
    flight_scratch_.t = t;
    flight_scratch_.scored = scored;
    flight_scratch_.finetuned = finetuned;
    flight_scratch_.nonconformity = scored ? nonconformity : 0.0;
    flight_scratch_.anomaly_score = scored ? anomaly_score : 0.0;
    flight_scratch_.input_min = context.input_min;
    flight_scratch_.input_max = context.input_max;
    flight_scratch_.input_mean = context.input_mean;
    flight_scratch_.drift_statistic = context.drift_statistic;
    flight_scratch_.train_size = context.train_size;
    flight_scratch_.stage_ns = step_ns_;
    flight_->Record(flight_scratch_);
    if (finetuned && options_.flight_dump_on_finetune) {
      flight_->DumpToPath("finetune");
    }
  }

  if (options_.trace == nullptr) return;
  bool emit = finetuned;
  if (scored) {
    emit = emit || (sample_cursor_ % options_.trace_sample_every) == 0;
    ++sample_cursor_;
  }
  if (!emit) return;

  std::string line;
  line.reserve(256);
  line += '{';
  if (!options_.label.empty()) {
    line += "\"run\":\"";
    line += options_.label;  // labels are identifiers; no escaping needed
    line += "\",";
  }
  AppendF(&line, "\"t\":%" PRId64, t);
  line += scored ? ",\"scored\":true" : ",\"scored\":false";
  if (scored) {
    AppendF(&line, ",\"a\":%.17g,\"f\":%.17g", nonconformity, anomaly_score);
  }
  line += finetuned ? ",\"finetuned\":true" : ",\"finetuned\":false";
  line += ",\"stage_ns\":{";
  bool first = true;
  for (std::size_t i = 0; i < kNumStages; ++i) {
    if (step_ns_[i] == 0) continue;
    if (!first) line += ',';
    first = false;
    AppendF(&line, "\"%s\":%" PRIu64, kStageNames[i], step_ns_[i]);
  }
  line += "}}";
  options_.trace->Write(line);
}

}  // namespace streamad::obs
