#include "src/obs/score_analytics.h"

#include <cmath>

namespace streamad::obs {

ScoreAnalytics::ScoreAnalytics(ScoreAnalyticsOptions options)
    : options_(options) {
  if (options_.score_sample_every == 0) options_.score_sample_every = 1;
  if (options_.rate_window == 0) options_.rate_window = 1;
  if (options_.anomaly_log_capacity == 0) options_.anomaly_log_capacity = 1;
  rate_ring_.assign(options_.rate_window, 0);
  log_.assign(options_.anomaly_log_capacity, AnomalyLogEntry{});
}

// STREAMAD_HOT: per-step quality-analytics update — runs inside the
// serving hot path for every event of every instrumented session. All
// rings are preallocated in the constructor; this block must not
// allocate.
bool ScoreAnalytics::OnStep(const ScoreStep& step) {
  bool flagged = false;
  bool feed_sketch = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++steps_;
    last_step_t_ = step.t;
    drift_statistic_ = step.drift_statistic;
    train_size_ = step.train_size;
    if (step.finetuned) ++finetunes_;

    if (step.scored) {
      const double score = step.anomaly_score;
      // Threshold in force BEFORE this score joins the baseline.
      double threshold = 0.0;
      bool armed = false;
      if (options_.use_absolute_threshold) {
        threshold = options_.absolute_threshold;
        armed = true;
      } else if (scored_steps_ >= options_.warmup_scored_steps) {
        threshold =
            ewma_mean_ + options_.threshold_sigma * std::sqrt(ewma_var_);
        armed = true;
      }
      flagged = armed && score > threshold;
      last_threshold_ = armed ? threshold : 0.0;

      if (flagged) {
        ++anomalies_;
        AnomalyLogEntry& entry = log_[log_cursor_];
        entry.t = step.t;
        entry.score = score;
        entry.threshold = threshold;
        entry.input_min = step.input_min;
        entry.input_max = step.input_max;
        entry.input_mean = step.input_mean;
        log_cursor_ = (log_cursor_ + 1) % log_.size();
        ++log_total_;
      }

      // Slide the rate window: retire the flag falling out, admit this
      // step's.
      if (rate_filled_ == rate_ring_.size()) {
        window_anomalies_ -= rate_ring_[rate_cursor_];
      } else {
        ++rate_filled_;
      }
      rate_ring_[rate_cursor_] = flagged ? 1 : 0;
      window_anomalies_ += rate_ring_[rate_cursor_];
      rate_cursor_ = (rate_cursor_ + 1) % rate_ring_.size();

      // EWMA mean/variance (West-style): seed on the first score so the
      // baseline does not drag through zero.
      if (scored_steps_ == 0) {
        ewma_mean_ = score;
        ewma_var_ = 0.0;
      } else {
        const double diff = score - ewma_mean_;
        const double incr = options_.ewma_alpha * diff;
        ewma_mean_ += incr;
        ewma_var_ = (1.0 - options_.ewma_alpha) * (ewma_var_ + diff * incr);
      }
      last_score_ = score;
      // 1-in-N gate decided here, not inside the sketch, so skipped
      // steps never touch the sketch's mutex at all.
      feed_sketch = scored_steps_ % options_.score_sample_every == 0;
      ++scored_steps_;
    }
  }
  // The sketch has its own internal mutex; feed it outside ours so the
  // read side never holds both at once.
  if (feed_sketch) score_sketch_.Observe(step.anomaly_score);
  return flagged;
}

void ScoreAnalytics::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  steps_ = 0;
  scored_steps_ = 0;
  finetunes_ = 0;
  anomalies_ = 0;
  ewma_mean_ = 0.0;
  ewma_var_ = 0.0;
  last_score_ = 0.0;
  last_threshold_ = 0.0;
  drift_statistic_ = 0.0;
  train_size_ = 0;
  last_step_t_ = 0;
  rate_ring_.assign(rate_ring_.size(), 0);
  rate_cursor_ = 0;
  rate_filled_ = 0;
  window_anomalies_ = 0;
  log_.assign(log_.size(), AnomalyLogEntry{});
  log_cursor_ = 0;
  log_total_ = 0;
  score_sketch_.Reset();
}

ScoreAnalyticsSnapshot ScoreAnalytics::Snap() const {
  ScoreAnalyticsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snap.steps = steps_;
    snap.scored_steps = scored_steps_;
    snap.finetunes = finetunes_;
    snap.anomalies = anomalies_;
    snap.anomaly_rate =
        rate_filled_ == 0
            ? 0.0
            : static_cast<double>(window_anomalies_) /
                  static_cast<double>(rate_filled_);
    snap.ewma_mean = ewma_mean_;
    snap.ewma_std = std::sqrt(ewma_var_ < 0.0 ? 0.0 : ewma_var_);
    snap.last_score = last_score_;
    snap.last_threshold = last_threshold_;
    snap.drift_statistic = drift_statistic_;
    snap.train_size = train_size_;
    snap.last_step_t = last_step_t_;
    const std::uint64_t retained =
        log_total_ < log_.size() ? log_total_ : log_.size();
    snap.recent_anomalies.reserve(static_cast<std::size_t>(retained));
    // Oldest retained entry sits at the cursor once the ring has wrapped.
    const std::size_t start =
        log_total_ < log_.size() ? 0 : log_cursor_;
    for (std::uint64_t i = 0; i < retained; ++i) {
      snap.recent_anomalies.push_back(
          log_[(start + i) % log_.size()]);
    }
  }
  snap.score_quantiles = score_sketch_.Snap();
  return snap;
}

}  // namespace streamad::obs
