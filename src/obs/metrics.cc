#include "src/obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>

#include "src/common/check.h"

namespace streamad::obs {
namespace {

/// CAS-loop add for pre-C++20-toolchain portability of
/// `atomic<double>::fetch_add` (libstdc++ lowers it to this anyway).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double expected = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(expected, expected + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double expected = target->load(std::memory_order_relaxed);
  while (value < expected &&
         !target->compare_exchange_weak(expected, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double expected = target->load(std::memory_order_relaxed);
  while (value > expected &&
         !target->compare_exchange_weak(expected, value,
                                        std::memory_order_relaxed)) {
  }
}

/// Shortest-round-trip-ish double formatting for the text exposition;
/// integral values print without a decimal point ("42", not "42.000000").
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

}  // namespace

std::size_t ThreadShard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

std::uint64_t Counter::Value() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  STREAMAD_CHECK_MSG(!upper_bounds_.empty(), "histogram needs >= 1 bucket");
  for (std::size_t i = 1; i < upper_bounds_.size(); ++i) {
    STREAMAD_CHECK_MSG(upper_bounds_[i - 1] < upper_bounds_[i],
                       "histogram bounds must be strictly increasing");
  }
  for (Shard& shard : shards_) {
    shard.buckets =
        std::vector<std::atomic<std::uint64_t>>(upper_bounds_.size() + 1);
  }
}

void Histogram::Observe(double value) {
  Shard& shard = shards_[ThreadShard()];
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - upper_bounds_.begin());
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&shard.sum, value);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  // min/max are seeded at +/-infinity, so the CAS loops alone are correct:
  // the first observation always beats the sentinel, and two racing "first"
  // observations cannot overwrite each other (the old seeding store could
  // clobber a concurrently CAS-ed tighter extreme).
  AtomicMin(&shard.min, value);
  AtomicMax(&shard.max, value);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.bucket_counts.assign(upper_bounds_.size() + 1, 0);
  bool first = true;
  for (const Shard& shard : shards_) {
    const std::uint64_t shard_count =
        shard.count.load(std::memory_order_relaxed);
    if (shard_count == 0) continue;
    for (std::size_t b = 0; b < snap.bucket_counts.size(); ++b) {
      snap.bucket_counts[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    snap.count += shard_count;
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    const double shard_min = shard.min.load(std::memory_order_relaxed);
    const double shard_max = shard.max.load(std::memory_order_relaxed);
    snap.min = first ? shard_min : std::min(snap.min, shard_min);
    snap.max = first ? shard_max : std::max(snap.max, shard_max);
    first = false;
  }
  return snap;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(
    const std::string& name, const std::vector<double>& upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(upper_bounds);
  } else {
    STREAMAD_CHECK_MSG(slot->upper_bounds() == upper_bounds,
                       "histogram re-registered with different buckets");
  }
  return slot.get();
}

QuantileSketch* MetricsRegistry::GetSketch(const std::string& name,
                                           std::uint32_t sample_every) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<QuantileSketch>& slot = sketches_[name];
  if (slot == nullptr) slot = std::make_unique<QuantileSketch>(sample_every);
  return slot.get();
}

void MetricsRegistry::DumpText(std::ostream* out) const {
  STREAMAD_CHECK(out != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    *out << "# TYPE " << name << " counter\n"
         << name << ' ' << counter->Value() << '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    *out << "# TYPE " << name << " gauge\n"
         << name << ' ' << FormatDouble(gauge->Value()) << '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->Snap();
    *out << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < histogram->upper_bounds().size(); ++b) {
      cumulative += snap.bucket_counts[b];
      *out << name << "_bucket{le=\""
           << FormatDouble(histogram->upper_bounds()[b]) << "\"} "
           << cumulative << '\n';
    }
    cumulative += snap.bucket_counts.back();
    *out << name << "_bucket{le=\"+Inf\"} " << cumulative << '\n'
         << name << "_sum " << FormatDouble(snap.sum) << '\n'
         << name << "_count " << snap.count << '\n';
  }
  for (const auto& [name, sketch] : sketches_) {
    const QuantileSketch::Snapshot snap = sketch->Snap();
    *out << "# TYPE " << name << " summary\n";
    const auto& quantiles = QuantileSketch::Quantiles();
    for (std::size_t q = 0; q < QuantileSketch::kNumQuantiles; ++q) {
      *out << name << "{quantile=\"" << FormatDouble(quantiles[q]) << "\"} "
           << FormatDouble(snap.values[q]) << '\n';
    }
    *out << name << "_sum " << FormatDouble(snap.sum) << '\n'
         << name << "_count " << snap.count << '\n';
  }
}

std::string MetricsRegistry::DumpText() const {
  std::ostringstream stream;
  DumpText(&stream);
  return stream.str();
}

}  // namespace streamad::obs
