#ifndef STREAMAD_OBS_TIMER_H_
#define STREAMAD_OBS_TIMER_H_

#include <chrono>
#include <cstdint>

#include "src/obs/metrics.h"

namespace streamad::obs {

/// Monotonic wall clock in nanoseconds; the time base of every span.
inline std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// RAII wall-clock span: records elapsed nanoseconds into a histogram when
/// it leaves scope. A null histogram makes the whole span a no-op (the
/// clock is not even read), so un-instrumented call sites pay one branch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_ns_(histogram ? NowNs() : 0) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(static_cast<double>(NowNs() - start_ns_));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::uint64_t start_ns_;
};

}  // namespace streamad::obs

#endif  // STREAMAD_OBS_TIMER_H_
