#ifndef STREAMAD_OBS_TIMER_H_
#define STREAMAD_OBS_TIMER_H_

#include <chrono>
#include <cstdint>

#if defined(__x86_64__)
#include <cpuid.h>
#include <x86intrin.h>
#endif

#include "src/obs/metrics.h"

namespace streamad::obs {
namespace internal {

inline std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if defined(__x86_64__)
/// TSC-based monotonic clock. `clock_gettime` costs ~35-40 ns per read
/// even through the vDSO; on the serving layer's per-event hot path
/// (enqueue stamp + dequeue + step end) that is a measurable tax. An
/// invariant TSC (constant rate, never stops — CPUID 0x80000007 EDX bit
/// 8) read with `rdtsc` costs ~20 ns, so when the CPU advertises one we
/// calibrate cycles-per-ns against the steady clock once (~2 ms, lazily
/// on first use) and synthesise nanoseconds from the counter. Telemetry
/// tolerates the ~0.1% calibration error; nothing timing-derived ever
/// feeds back into detection.
struct TscClock {
  bool usable = false;
  std::uint64_t base_tsc = 0;
  std::uint64_t base_ns = 0;
  double ns_per_cycle = 0.0;

  TscClock() {
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid(0x80000007u, &eax, &ebx, &ecx, &edx) == 0) return;
    if ((edx & (1u << 8)) == 0) return;  // no invariant TSC
    const std::uint64_t ns0 = SteadyNowNs();
    const std::uint64_t tsc0 = __rdtsc();
    std::uint64_t ns1 = ns0;
    std::uint64_t tsc1 = tsc0;
    while (ns1 - ns0 < 2'000'000) {  // ~2 ms calibration window
      ns1 = SteadyNowNs();
      tsc1 = __rdtsc();
    }
    if (tsc1 <= tsc0) return;  // TSC not advancing; stay on steady_clock
    ns_per_cycle =
        static_cast<double>(ns1 - ns0) / static_cast<double>(tsc1 - tsc0);
    base_tsc = tsc1;
    base_ns = ns1;
    usable = true;
  }

  std::uint64_t Read() const {
    return base_ns + static_cast<std::uint64_t>(
                         static_cast<double>(__rdtsc() - base_tsc) *
                         ns_per_cycle);
  }
};

inline const TscClock& GetTscClock() {
  static const TscClock clock;
  return clock;
}
#endif  // defined(__x86_64__)

}  // namespace internal

/// Monotonic wall clock in nanoseconds; the time base of every span.
/// Reads the invariant TSC when the CPU has one (see TscClock), falling
/// back to `steady_clock` otherwise.
inline std::uint64_t NowNs() {
#if defined(__x86_64__)
  const internal::TscClock& clock = internal::GetTscClock();
  if (clock.usable) return clock.Read();
#endif
  return internal::SteadyNowNs();
}

/// RAII wall-clock span: records elapsed nanoseconds into a histogram when
/// it leaves scope. A null histogram makes the whole span a no-op (the
/// clock is not even read), so un-instrumented call sites pay one branch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_ns_(histogram ? NowNs() : 0) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(static_cast<double>(NowNs() - start_ns_));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::uint64_t start_ns_;
};

}  // namespace streamad::obs

#endif  // STREAMAD_OBS_TIMER_H_
