#include "src/io/atomic_file.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/check.h"

namespace streamad::io {

core::Status WriteFileAtomic(const std::string& path,
                             const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return core::Status::IoError("cannot open for write: " + tmp);
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return core::Status::IoError("short write: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return core::Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  return core::Status::Ok();
}

core::Status ReadFileToString(const std::string& path, std::string* contents) {
  STREAMAD_CHECK(contents != nullptr);
  std::ifstream in(path, std::ios::binary);
  if (!in) return core::Status::NotFound("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return core::Status::IoError("read failed: " + path);
  *contents = buffer.str();
  return core::Status::Ok();
}

}  // namespace streamad::io
