#include "src/io/atomic_file.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "src/common/check.h"

namespace streamad::io {
namespace {

// ofstream::flush only reaches the kernel page cache. Without an fsync of
// the data before the rename, a power loss can make the rename durable
// while the bytes are not, leaving an empty/truncated file in place of
// the old one.
core::Status SyncFile(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return core::Status::IoError("cannot reopen for fsync: " + path);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return core::Status::IoError("fsync failed: " + path);
#endif
  return core::Status::Ok();
}

// Best-effort: makes the rename itself durable.
void SyncParentDir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string(".") : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#endif
}

}  // namespace

core::Status WriteFileAtomic(const std::string& path,
                             const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return core::Status::IoError("cannot open for write: " + tmp);
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return core::Status::IoError("short write: " + tmp);
    }
  }
  const core::Status synced = SyncFile(tmp);
  if (!synced.ok()) {
    std::remove(tmp.c_str());
    return synced;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return core::Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  SyncParentDir(path);
  return core::Status::Ok();
}

core::Status ReadFileToString(const std::string& path, std::string* contents) {
  STREAMAD_CHECK(contents != nullptr);
  std::ifstream in(path, std::ios::binary);
  if (!in) return core::Status::NotFound("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return core::Status::IoError("read failed: " + path);
  *contents = buffer.str();
  return core::Status::Ok();
}

}  // namespace streamad::io
