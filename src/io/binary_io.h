#ifndef STREAMAD_IO_BINARY_IO_H_
#define STREAMAD_IO_BINARY_IO_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "src/linalg/matrix.h"

namespace streamad::io {

/// Little binary archive writer used for model checkpoints.
///
/// The format is a flat little-endian byte stream with no padding:
/// integers as fixed-width u64/i64, doubles as IEEE-754 bits, strings and
/// containers length-prefixed. Every checkpoint opens with a magic tag and
/// a version so loaders can reject foreign data (see `Model::SaveState`).
/// I/O failures are environmental, not programming errors: the writer
/// carries an `ok()` flag instead of CHECK-ing.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* out);

  void WriteU8(std::uint8_t value);
  void WriteU32(std::uint32_t value);
  void WriteU64(std::uint64_t value);
  void WriteI64(std::int64_t value);
  void WriteDouble(double value);
  void WriteString(const std::string& value);
  void WriteDoubleVec(const std::vector<double>& value);
  void WriteIntVec(const std::vector<int>& value);
  void WriteMatrix(const linalg::Matrix& value);

  /// False once any write failed; subsequent writes are no-ops.
  bool ok() const { return ok_; }

 private:
  void WriteBytes(const void* data, std::size_t size);

  std::ostream* out_;
  bool ok_ = true;
};

/// Counterpart reader. Every `Read*` returns false (and poisons the
/// reader) on EOF, short reads or absurd sizes; callers bail out on the
/// first failure.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream* in);

  bool ReadU8(std::uint8_t* value);
  bool ReadU32(std::uint32_t* value);
  bool ReadU64(std::uint64_t* value);
  bool ReadI64(std::int64_t* value);
  bool ReadDouble(double* value);
  bool ReadString(std::string* value);
  bool ReadDoubleVec(std::vector<double>* value);
  bool ReadIntVec(std::vector<int>* value);
  bool ReadMatrix(linalg::Matrix* value);

  /// Convenience: reads a string and compares against `expected`.
  bool ExpectString(const std::string& expected);

  bool ok() const { return ok_; }

 private:
  bool ReadBytes(void* data, std::size_t size);

  /// Upper bound on any single container (guards against garbage length
  /// prefixes allocating gigabytes).
  static constexpr std::uint64_t kMaxElements = 1ull << 28;

  std::istream* in_;
  bool ok_ = true;
};

}  // namespace streamad::io

#endif  // STREAMAD_IO_BINARY_IO_H_
