#ifndef STREAMAD_IO_ATOMIC_FILE_H_
#define STREAMAD_IO_ATOMIC_FILE_H_

#include <string>

#include "src/core/status.h"

namespace streamad::io {

/// Writes `contents` to `path` atomically: the bytes go to `<path>.tmp`
/// first, are fsync'd (POSIX), and are then renamed into place (with a
/// best-effort fsync of the directory), so readers never observe a torn
/// checkpoint even if the process — or, on POSIX, the machine — dies
/// mid-write. Used by the serving layer's on-disk checkpoint store
/// (src/serve/checkpoint_store.h).
core::Status WriteFileAtomic(const std::string& path,
                             const std::string& contents);

/// Reads the whole of `path` into `*contents` (binary, replaced).
core::Status ReadFileToString(const std::string& path, std::string* contents);

}  // namespace streamad::io

#endif  // STREAMAD_IO_ATOMIC_FILE_H_
