#include "src/io/binary_io.h"

#include <cstring>

#include "src/common/check.h"

namespace streamad::io {

BinaryWriter::BinaryWriter(std::ostream* out) : out_(out) {
  STREAMAD_CHECK(out != nullptr);
}

void BinaryWriter::WriteBytes(const void* data, std::size_t size) {
  if (!ok_) return;
  out_->write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  ok_ = static_cast<bool>(*out_);
}

void BinaryWriter::WriteU8(std::uint8_t value) {
  WriteBytes(&value, sizeof(value));
}

void BinaryWriter::WriteU32(std::uint32_t value) {
  WriteBytes(&value, sizeof(value));
}

void BinaryWriter::WriteU64(std::uint64_t value) {
  WriteBytes(&value, sizeof(value));
}

void BinaryWriter::WriteI64(std::int64_t value) {
  WriteBytes(&value, sizeof(value));
}

void BinaryWriter::WriteDouble(double value) {
  WriteBytes(&value, sizeof(value));
}

void BinaryWriter::WriteString(const std::string& value) {
  WriteU64(value.size());
  WriteBytes(value.data(), value.size());
}

void BinaryWriter::WriteDoubleVec(const std::vector<double>& value) {
  WriteU64(value.size());
  WriteBytes(value.data(), value.size() * sizeof(double));
}

void BinaryWriter::WriteIntVec(const std::vector<int>& value) {
  WriteU64(value.size());
  for (int v : value) WriteI64(v);
}

void BinaryWriter::WriteMatrix(const linalg::Matrix& value) {
  WriteU64(value.rows());
  WriteU64(value.cols());
  WriteBytes(value.data().data(), value.size() * sizeof(double));
}

BinaryReader::BinaryReader(std::istream* in) : in_(in) {
  STREAMAD_CHECK(in != nullptr);
}

bool BinaryReader::ReadBytes(void* data, std::size_t size) {
  if (!ok_) return false;
  in_->read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  ok_ = static_cast<bool>(*in_);
  return ok_;
}

bool BinaryReader::ReadU8(std::uint8_t* value) {
  STREAMAD_CHECK(value != nullptr);
  return ReadBytes(value, sizeof(*value));
}

bool BinaryReader::ReadU32(std::uint32_t* value) {
  STREAMAD_CHECK(value != nullptr);
  return ReadBytes(value, sizeof(*value));
}

bool BinaryReader::ReadU64(std::uint64_t* value) {
  STREAMAD_CHECK(value != nullptr);
  return ReadBytes(value, sizeof(*value));
}

bool BinaryReader::ReadI64(std::int64_t* value) {
  STREAMAD_CHECK(value != nullptr);
  return ReadBytes(value, sizeof(*value));
}

bool BinaryReader::ReadDouble(double* value) {
  STREAMAD_CHECK(value != nullptr);
  return ReadBytes(value, sizeof(*value));
}

bool BinaryReader::ReadString(std::string* value) {
  STREAMAD_CHECK(value != nullptr);
  std::uint64_t size = 0;
  if (!ReadU64(&size) || size > kMaxElements) {
    ok_ = false;
    return false;
  }
  value->resize(size);
  return size == 0 || ReadBytes(value->data(), size);
}

bool BinaryReader::ReadDoubleVec(std::vector<double>* value) {
  STREAMAD_CHECK(value != nullptr);
  std::uint64_t size = 0;
  if (!ReadU64(&size) || size > kMaxElements) {
    ok_ = false;
    return false;
  }
  value->resize(size);
  return size == 0 || ReadBytes(value->data(), size * sizeof(double));
}

bool BinaryReader::ReadIntVec(std::vector<int>* value) {
  STREAMAD_CHECK(value != nullptr);
  std::uint64_t size = 0;
  if (!ReadU64(&size) || size > kMaxElements) {
    ok_ = false;
    return false;
  }
  value->resize(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    std::int64_t v = 0;
    if (!ReadI64(&v)) return false;
    (*value)[i] = static_cast<int>(v);
  }
  return true;
}

bool BinaryReader::ReadMatrix(linalg::Matrix* value) {
  STREAMAD_CHECK(value != nullptr);
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  if (!ReadU64(&rows) || !ReadU64(&cols)) return false;
  if (rows > kMaxElements || cols > kMaxElements ||
      (rows != 0 && cols > kMaxElements / rows)) {
    ok_ = false;
    return false;
  }
  std::vector<double> flat(rows * cols);
  if (!flat.empty() && !ReadBytes(flat.data(), flat.size() * sizeof(double))) {
    return false;
  }
  *value = linalg::Matrix::FromFlat(rows, cols, std::move(flat));
  return true;
}

bool BinaryReader::ExpectString(const std::string& expected) {
  std::string actual;
  if (!ReadString(&actual)) return false;
  if (actual != expected) {
    ok_ = false;
    return false;
  }
  return true;
}

}  // namespace streamad::io
