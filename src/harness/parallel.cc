#include "src/harness/parallel.h"

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/check.h"

namespace streamad::harness {

void ParallelFor(std::size_t count,
                 const std::function<void(std::size_t)>& work,
                 std::size_t max_threads) {
  STREAMAD_CHECK(work != nullptr);
  if (count == 0) return;

  std::size_t threads = max_threads;
  if (threads == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    threads = hardware == 0 ? 4 : hardware;
  }
  if (threads > count) threads = count;

  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) work(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      work(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
}

}  // namespace streamad::harness
