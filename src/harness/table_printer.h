#ifndef STREAMAD_HARNESS_TABLE_PRINTER_H_
#define STREAMAD_HARNESS_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace streamad::harness {

/// Fixed-width console table used by the bench binaries to print the
/// reproduced paper tables. Column widths adapt to the widest cell.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; must have as many cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Renders the table to `out`.
  void Print(std::ostream& out) const;

  /// Renders the table to stdout (keeps `<iostream>` out of this header).
  void Print() const;

  /// Formats a double with `digits` decimals (helper for metric cells).
  static std::string Num(double value, int digits = 2);

 private:
  static constexpr const char* kSeparatorTag = "\x01--";

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace streamad::harness

#endif  // STREAMAD_HARNESS_TABLE_PRINTER_H_
