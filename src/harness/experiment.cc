#include "src/harness/experiment.h"

#include <memory>

#include "src/common/check.h"
#include "src/metrics/nab_score.h"
#include "src/metrics/pr_auc.h"
#include "src/metrics/precision_recall.h"
#include "src/metrics/vus.h"

namespace streamad::harness {

std::vector<int> RunTrace::AlignedLabels(
    const data::LabeledSeries& series) const {
  STREAMAD_CHECK(first_scored + scores.size() <= series.labels.size());
  return std::vector<int>(
      series.labels.begin() + static_cast<std::ptrdiff_t>(first_scored),
      series.labels.begin() +
          static_cast<std::ptrdiff_t>(first_scored + scores.size()));
}

obs::RecorderOptions ToRecorderOptions(const RunOptions& options) {
  obs::RecorderOptions recorder_options;
  recorder_options.trace = options.trace;
  recorder_options.trace_sample_every = options.trace_sample_every;
  recorder_options.label = options.label;
  recorder_options.flight_capacity = options.flight_capacity;
  recorder_options.score_analytics = options.score_analytics;
  recorder_options.analytics = options.analytics;
  if (options.flight_capacity > 0 && !options.flight_dump_dir.empty()) {
    recorder_options.flight_dump_path = options.flight_dump_dir + "/flight_" +
                                        SanitizeRunLabel(options.label) +
                                        ".jsonl";
  }
  return recorder_options;
}

RunTrace RunDetector(core::StreamingDetector* detector,
                     const data::LabeledSeries& series,
                     const RunOptions& options) {
  STREAMAD_CHECK(detector != nullptr);
  // A pre-built recorder wins; otherwise a registry requests a run-scoped
  // recorder built from the remaining fields.
  obs::Recorder* recorder = options.recorder;
  std::unique_ptr<obs::Recorder> owned;
  if (recorder == nullptr && options.metrics != nullptr) {
    owned = std::make_unique<obs::Recorder>(options.metrics,
                                            ToRecorderOptions(options));
    recorder = owned.get();
  }
  if (recorder != nullptr) detector->set_recorder(recorder);
  RunTrace trace;
  bool any_scored = false;
  for (std::size_t t = 0; t < series.length(); ++t) {
    const core::StreamingDetector::StepResult result =
        detector->Step(series.At(t));
    if (result.scored) {
      if (!any_scored) {
        trace.first_scored = t;
        any_scored = true;
      }
      trace.scores.push_back(result.anomaly_score);
      trace.nonconformities.push_back(result.nonconformity);
      if (result.finetuned) {
        trace.finetune_steps.push_back(static_cast<std::int64_t>(t));
      }
    }
  }
  if (recorder != nullptr) {
    trace.stage_totals = recorder->totals();
    trace.has_telemetry = true;
    detector->set_recorder(nullptr);
  }
  STREAMAD_CHECK_MSG(any_scored,
                     "series shorter than warm-up + initial training");
  return trace;
}

RunTrace RunDetector(core::StreamingDetector* detector,
                     const data::LabeledSeries& series,
                     obs::Recorder* recorder) {
  RunOptions options;
  options.recorder = recorder;
  return RunDetector(detector, series, options);
}

MetricSummary MetricSummary::Mean(const std::vector<MetricSummary>& parts) {
  STREAMAD_CHECK(!parts.empty());
  MetricSummary mean;
  for (const MetricSummary& part : parts) {
    mean.precision += part.precision;
    mean.recall += part.recall;
    mean.pr_auc += part.pr_auc;
    mean.vus += part.vus;
    mean.nab += part.nab;
  }
  const double inv = 1.0 / static_cast<double>(parts.size());
  mean.precision *= inv;
  mean.recall *= inv;
  mean.pr_auc *= inv;
  mean.vus *= inv;
  mean.nab *= inv;
  return mean;
}

std::string SanitizeRunLabel(const std::string& label) {
  std::string sanitized = label;
  for (char& c : sanitized) {
    const bool keep = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                      c == '-';
    if (!keep) c = '_';
  }
  return sanitized;
}

MetricSummary Evaluate(const RunTrace& trace,
                       const data::LabeledSeries& series) {
  const std::vector<int> labels = trace.AlignedLabels(series);
  MetricSummary summary;
  const metrics::BestOperatingPoint op =
      metrics::BestF1OperatingPoint(trace.scores, labels);
  summary.precision = op.precision;
  summary.recall = op.recall;
  summary.pr_auc = metrics::RangePrAuc(trace.scores, labels);
  summary.vus = metrics::VolumeUnderPrSurface(trace.scores, labels);
  // NAB shares the range-PR operating point; point-wise counting then
  // produces the paper's "high precision, very negative NAB" disparity for
  // detectors that flood long predicted intervals.
  summary.nab = metrics::NabScoreAt(trace.scores, labels, op.threshold);
  return summary;
}

MetricSummary EvaluateAlgorithmOnCorpus(const core::AlgorithmSpec& spec,
                                        core::ScoreType score,
                                        const data::Corpus& corpus,
                                        const EvalConfig& config) {
  STREAMAD_CHECK(!corpus.series.empty());
  std::vector<MetricSummary> parts;
  std::size_t series_index = 0;
  for (const data::LabeledSeries& series : corpus.series) {
    auto detector =
        core::BuildDetector(spec, score, config.params, config.seed);
    // One recorder per run (when the registry is set); the shared registry
    // aggregates across the parallel sweep's threads.
    RunOptions run = config.run;
    run.label = core::SpecLabel(spec) + "/" + core::ToString(score) + "/s" +
                std::to_string(series_index);
    const RunTrace trace = RunDetector(detector.get(), series, run);
    parts.push_back(Evaluate(trace, series));
    ++series_index;
  }
  return MetricSummary::Mean(parts);
}

MetricSummary EvaluateTable3Row(const core::AlgorithmSpec& spec,
                                const data::Corpus& corpus,
                                const EvalConfig& config) {
  const MetricSummary avg = EvaluateAlgorithmOnCorpus(
      spec, core::ScoreType::kAverage, corpus, config);
  const MetricSummary likelihood = EvaluateAlgorithmOnCorpus(
      spec, core::ScoreType::kAnomalyLikelihood, corpus, config);
  return MetricSummary::Mean({avg, likelihood});
}

ScoreAblation EvaluateScoreAblation(const data::Corpus& corpus,
                                    const EvalConfig& config) {
  ScoreAblation ablation;
  std::vector<MetricSummary> raw;
  std::vector<MetricSummary> average;
  std::vector<MetricSummary> likelihood;
  for (const core::AlgorithmSpec& spec : core::AllPaperAlgorithms()) {
    raw.push_back(EvaluateAlgorithmOnCorpus(spec, core::ScoreType::kRaw,
                                            corpus, config));
    average.push_back(EvaluateAlgorithmOnCorpus(
        spec, core::ScoreType::kAverage, corpus, config));
    likelihood.push_back(EvaluateAlgorithmOnCorpus(
        spec, core::ScoreType::kAnomalyLikelihood, corpus, config));
  }
  ablation.raw = MetricSummary::Mean(raw);
  ablation.average = MetricSummary::Mean(average);
  ablation.anomaly_likelihood = MetricSummary::Mean(likelihood);
  return ablation;
}

}  // namespace streamad::harness
