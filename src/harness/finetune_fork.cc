#include "src/harness/finetune_fork.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/data/injectors.h"

namespace streamad::harness {

namespace {

constexpr double kTwoPi = 6.283185307179586;

/// Streams `series` through `detector` up to (exclusive) `stop`, recording
/// nonconformities and fine-tune steps from `record_from` on.
struct StreamLog {
  std::vector<double> nonconformity;  // indexed by absolute step
  std::vector<std::size_t> finetunes;
};

StreamLog StreamThrough(core::StreamingDetector* detector,
                        const data::LabeledSeries& series,
                        std::size_t stop) {
  StreamLog log;
  log.nonconformity.assign(series.length(), 0.0);
  for (std::size_t t = 0; t < std::min(stop, series.length()); ++t) {
    const auto result = detector->Step(series.At(t));
    if (result.scored) log.nonconformity[t] = result.nonconformity;
    if (result.finetuned) log.finetunes.push_back(t);
  }
  return log;
}

}  // namespace

data::LabeledSeries MakeDriftStream(const FinetuneForkConfig& config) {
  STREAMAD_CHECK(config.drift_start > config.params.initial_train_steps);
  STREAMAD_CHECK(config.length > config.drift_start + 500);
  Rng rng(config.seed);

  data::LabeledSeries series;
  series.name = "finetune-fork-stream";
  series.values = linalg::Matrix(config.length, config.channels);
  series.labels.assign(config.length, 0);

  std::vector<double> amplitude(config.channels);
  std::vector<double> phase(config.channels);
  for (std::size_t c = 0; c < config.channels; ++c) {
    amplitude[c] = rng.Uniform(0.8, 1.2);
    phase[c] = rng.Uniform(0.0, kTwoPi);
  }
  const double base_freq = 0.05;
  // The drift: cadence slows by 30%, the amplitude grows by 40% and the
  // baseline level shifts (posture change), blended in over 300 steps —
  // a regime change, not an anomaly. The level component is what moves
  // the training-set mean and lets mu/sigma-Change fire.
  double phase_acc = 0.0;
  for (std::size_t t = 0; t < config.length; ++t) {
    double freq = base_freq;
    double amp_scale = 1.0;
    double level = 0.0;
    if (t >= config.drift_start) {
      const double blend = std::min(
          1.0, static_cast<double>(t - config.drift_start) / 300.0);
      freq *= 1.0 - 0.3 * blend;
      amp_scale = 1.0 + 0.4 * blend;
      level = 2.5 * blend;
    }
    phase_acc += freq;
    for (std::size_t c = 0; c < config.channels; ++c) {
      series.values(t, c) =
          level +
          amplitude[c] * amp_scale * std::sin(kTwoPi * phase_acc + phase[c]) +
          rng.Gaussian(0.0, 0.1);
    }
  }
  series.Validate();
  return series;
}

FinetuneForkResult RunFinetuneForkExperiment(
    const FinetuneForkConfig& config) {
  const data::LabeledSeries clean = MakeDriftStream(config);

  // Phase 1: find the fork point — the first fine-tune after the drift —
  // by streaming the clean series through a reference detector.
  std::size_t finetune_step = 0;
  {
    auto probe = core::BuildDetector(config.spec, core::ScoreType::kAverage,
                                     config.params, config.seed);
    const StreamLog log = StreamThrough(probe.get(), clean, clean.length());
    bool found = false;
    for (std::size_t t : log.finetunes) {
      if (t >= config.drift_start) {
        finetune_step = t;
        found = true;
        break;
      }
    }
    STREAMAD_CHECK_MSG(found, "no fine-tune triggered after the drift");
  }

  // Phase 2: inject the artificial anomaly right after the fork point and
  // replay the stream through two fresh, identically seeded detectors.
  FinetuneForkResult result;
  result.drift_start = config.drift_start;
  result.finetune_step = finetune_step;
  result.anomaly_begin = finetune_step + config.anomaly_offset;
  result.anomaly_end = result.anomaly_begin + config.anomaly_length;
  STREAMAD_CHECK_MSG(result.anomaly_end + config.params.window <
                         clean.length(),
                     "stream too short for the injected anomaly");

  data::LabeledSeries injected = clean;
  std::vector<std::size_t> all_channels(injected.channels());
  for (std::size_t c = 0; c < all_channels.size(); ++c) all_channels[c] = c;
  data::InjectSpike(&injected, result.anomaly_begin, config.anomaly_length,
                    all_channels, config.anomaly_magnitude);

  auto adaptive = core::BuildDetector(config.spec, core::ScoreType::kAverage,
                                      config.params, config.seed);
  auto stale = core::BuildDetector(config.spec, core::ScoreType::kAverage,
                                   config.params, config.seed);

  // Both detectors evolve identically until the drift; from there the
  // stale twin keeps the "previous model" by suppressing fine-tunes.
  const std::size_t horizon =
      result.anomaly_end + config.params.window;  // anomaly leaves window
  StreamLog log_adaptive;
  StreamLog log_stale;
  log_adaptive.nonconformity.assign(injected.length(), 0.0);
  log_stale.nonconformity.assign(injected.length(), 0.0);
  for (std::size_t t = 0; t <= horizon; ++t) {
    if (t == config.drift_start) stale->set_finetuning_enabled(false);
    const auto ra = adaptive->Step(injected.At(t));
    const auto rs = stale->Step(injected.At(t));
    if (ra.scored) log_adaptive.nonconformity[t] = ra.nonconformity;
    if (rs.scored) log_stale.nonconformity[t] = rs.nonconformity;
  }

  auto summarize = [&](const StreamLog& log) {
    ForkSideResult side;
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t t = finetune_step; t < result.anomaly_begin; ++t) {
      sum += log.nonconformity[t];
      ++count;
    }
    STREAMAD_CHECK(count > 0);
    side.pre_anomaly_mean = sum / static_cast<double>(count);
    double var = 0.0;
    for (std::size_t t = finetune_step; t < result.anomaly_begin; ++t) {
      const double d = log.nonconformity[t] - side.pre_anomaly_mean;
      var += d * d;
    }
    side.pre_anomaly_std = std::sqrt(var / static_cast<double>(count));
    side.peak = 0.0;
    for (std::size_t t = result.anomaly_begin; t <= horizon; ++t) {
      side.peak = std::max(side.peak, log.nonconformity[t]);
    }
    return side;
  };
  result.finetuned = summarize(log_adaptive);
  result.stale = summarize(log_stale);
  return result;
}

}  // namespace streamad::harness
