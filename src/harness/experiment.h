#ifndef STREAMAD_HARNESS_EXPERIMENT_H_
#define STREAMAD_HARNESS_EXPERIMENT_H_

#include <cstdint>
#include <vector>

#include "src/core/algorithm_spec.h"
#include "src/data/series.h"
#include "src/obs/recorder.h"

namespace streamad::harness {

/// The per-step trace of one detector run over one series.
struct RunTrace {
  /// Anomaly scores `f_t` for the scored suffix of the series.
  std::vector<double> scores;
  /// Nonconformity scores `a_t`, aligned with `scores`.
  std::vector<double> nonconformities;
  /// Index of the first scored step within the series.
  std::size_t first_scored = 0;
  /// Steps (series indices) at which a fine-tune was triggered.
  std::vector<std::int64_t> finetune_steps;

  /// Per-stage wall-clock totals of the run; populated (and
  /// `has_telemetry` set) when the run was instrumented with a recorder.
  obs::StageTotals stage_totals;
  bool has_telemetry = false;

  /// The ground-truth labels aligned with `scores`.
  std::vector<int> AlignedLabels(const data::LabeledSeries& series) const;
};

/// Streams `series` through `detector` and records the trace. When
/// `recorder` is non-null it is attached for the duration of the run
/// (detached afterwards) and its per-stage totals are copied into the
/// returned trace.
RunTrace RunDetector(core::StreamingDetector* detector,
                     const data::LabeledSeries& series,
                     obs::Recorder* recorder = nullptr);

/// One Table III cell: the five reported metrics.
struct MetricSummary {
  double precision = 0.0;
  double recall = 0.0;
  double pr_auc = 0.0;
  double vus = 0.0;
  double nab = 0.0;

  /// Elementwise mean of summaries (series / scorer averaging).
  static MetricSummary Mean(const std::vector<MetricSummary>& parts);
};

/// Evaluates a scored trace against the series labels. Precision / recall
/// and NAB are reported at the best-F1 threshold of the range-PR sweep
/// (one shared operating point), PR-AUC and VUS are threshold-free.
MetricSummary Evaluate(const RunTrace& trace,
                       const data::LabeledSeries& series);

/// Shared configuration of the Table III / ablation sweeps.
struct EvalConfig {
  core::DetectorParams params;
  std::uint64_t seed = 7;

  /// Optional shared telemetry registry. When set, every detector run of
  /// the sweep is instrumented with its own `obs::Recorder` on this
  /// registry — the registry is thread-safe, so the `ParallelFor` sweeps
  /// record concurrently. Not owned.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional shared JSONL trace sink (requires `metrics`). Not owned.
  obs::TraceSink* trace = nullptr;
  /// Trace sampling: every Nth scored step per run (fine-tune steps are
  /// always traced). 64 bounds trace volume during full-table sweeps.
  std::size_t trace_sample_every = 64;

  /// Flight recorder ring capacity per run (0 disables). Requires
  /// `metrics`. Each run's recorder retains its last N steps of full
  /// pipeline state (src/obs/flight_recorder.h).
  std::size_t flight_capacity = 0;
  /// Directory for per-run flight dumps. When non-empty (and
  /// `flight_capacity > 0`), each run dumps its ring to
  /// `<dir>/flight_<sanitised run label>.jsonl` on fine-tunes and on
  /// `STREAMAD_CHECK` failures. The directory must already exist.
  std::string flight_dump_dir;
};

/// `label` with every character outside `[A-Za-z0-9_.-]` replaced by '_',
/// safe to embed in a file name (run labels contain '/' separators).
std::string SanitizeRunLabel(const std::string& label);

/// Builds a fresh detector for (spec, score), runs every series of the
/// corpus and averages the metrics.
MetricSummary EvaluateAlgorithmOnCorpus(const core::AlgorithmSpec& spec,
                                        core::ScoreType score,
                                        const data::Corpus& corpus,
                                        const EvalConfig& config);

/// One row of Table III: the metrics averaged over the two anomaly scores
/// (average / anomaly likelihood), exactly as the paper reports them.
MetricSummary EvaluateTable3Row(const core::AlgorithmSpec& spec,
                                const data::Corpus& corpus,
                                const EvalConfig& config);

/// The anomaly-score ablation rows at the bottom of Table III: one summary
/// per score type, averaged over all 26 algorithms of Table I.
struct ScoreAblation {
  MetricSummary raw;
  MetricSummary average;
  MetricSummary anomaly_likelihood;
};

ScoreAblation EvaluateScoreAblation(const data::Corpus& corpus,
                                    const EvalConfig& config);

}  // namespace streamad::harness

#endif  // STREAMAD_HARNESS_EXPERIMENT_H_
