#ifndef STREAMAD_HARNESS_EXPERIMENT_H_
#define STREAMAD_HARNESS_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/algorithm_spec.h"
#include "src/data/series.h"
#include "src/obs/recorder.h"

namespace streamad::harness {

/// The per-step trace of one detector run over one series.
struct RunTrace {
  /// Anomaly scores `f_t` for the scored suffix of the series.
  std::vector<double> scores;
  /// Nonconformity scores `a_t`, aligned with `scores`.
  std::vector<double> nonconformities;
  /// Index of the first scored step within the series.
  std::size_t first_scored = 0;
  /// Steps (series indices) at which a fine-tune was triggered.
  std::vector<std::int64_t> finetune_steps;

  /// Per-stage wall-clock totals of the run; populated (and
  /// `has_telemetry` set) when the run was instrumented with a recorder.
  obs::StageTotals stage_totals;
  bool has_telemetry = false;

  /// The ground-truth labels aligned with `scores`.
  std::vector<int> AlignedLabels(const data::LabeledSeries& series) const;
};

/// Observability attachments for one detector run. This is the ONE place
/// where telemetry wiring is described — shared by `RunDetector`, the
/// sweep drivers (via `EvalConfig::run`) and the serving layer's sessions
/// (`serve::SessionConfig::run`) — so the registry / trace / flight knobs
/// cannot drift between the harness and `obs::RecorderOptions` again.
struct RunOptions {
  /// When set, the run is instrumented with an `obs::Recorder` on this
  /// registry (thread-safe; concurrent runs may share it). Not owned.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional shared JSONL trace sink (requires `metrics`). Not owned.
  obs::TraceSink* trace = nullptr;
  /// Trace sampling: every Nth scored step per run (fine-tune steps are
  /// always traced). 64 bounds trace volume during full-table sweeps.
  std::size_t trace_sample_every = 64;
  /// Flight recorder ring capacity per run (0 disables). Requires
  /// `metrics`. The recorder retains the last N steps of full pipeline
  /// state (src/obs/flight_recorder.h).
  std::size_t flight_capacity = 0;
  /// Directory for flight dumps. When non-empty (and `flight_capacity >
  /// 0`), the ring is dumped to `<dir>/flight_<sanitised label>.jsonl` on
  /// fine-tunes and on `STREAMAD_CHECK` failures. Must already exist.
  std::string flight_dump_dir;
  /// Label stamped on trace records and flight dump file names; sweep
  /// drivers derive it per run ("<spec>/<score>/s<series>").
  std::string label;
  /// Attach per-run detection-quality analytics (score quantiles, EWMA
  /// baseline, anomaly rate/log); read back via
  /// `Recorder::score_analytics()`. Requires `metrics`.
  bool score_analytics = false;
  /// Tuning for the analytics when attached.
  obs::ScoreAnalyticsOptions analytics;
  /// Escape hatch: attach THIS pre-built recorder instead of constructing
  /// one from the fields above (which are then ignored). Not owned.
  obs::Recorder* recorder = nullptr;
};

/// Expands `options` into per-run `obs::RecorderOptions` (label and flight
/// dump path derivation). The single conversion point between the harness
/// and the obs layer.
obs::RecorderOptions ToRecorderOptions(const RunOptions& options);

/// Streams `series` through `detector` and records the trace. When
/// `options` request telemetry (a registry or a pre-built recorder), the
/// recorder is attached for the duration of the run (detached afterwards)
/// and its per-stage totals are copied into the returned trace.
RunTrace RunDetector(core::StreamingDetector* detector,
                     const data::LabeledSeries& series,
                     const RunOptions& options = RunOptions());

/// Transitional overload, one PR long: the trailing recorder argument
/// folded into `RunOptions::recorder`.
[[deprecated("pass the recorder via RunOptions::recorder")]]
RunTrace RunDetector(core::StreamingDetector* detector,
                     const data::LabeledSeries& series,
                     obs::Recorder* recorder);

/// One Table III cell: the five reported metrics.
struct MetricSummary {
  double precision = 0.0;
  double recall = 0.0;
  double pr_auc = 0.0;
  double vus = 0.0;
  double nab = 0.0;

  /// Elementwise mean of summaries (series / scorer averaging).
  static MetricSummary Mean(const std::vector<MetricSummary>& parts);
};

/// Evaluates a scored trace against the series labels. Precision / recall
/// and NAB are reported at the best-F1 threshold of the range-PR sweep
/// (one shared operating point), PR-AUC and VUS are threshold-free.
MetricSummary Evaluate(const RunTrace& trace,
                       const data::LabeledSeries& series);

/// Shared configuration of the Table III / ablation sweeps.
struct EvalConfig {
  core::DetectorConfig params;
  std::uint64_t seed = 7;

  /// Per-run observability attachments. The sweep stamps a fresh
  /// `RunOptions::label` per (spec, score, series) run; everything else is
  /// forwarded verbatim to `RunDetector`.
  RunOptions run;
};

/// `label` with every character outside `[A-Za-z0-9_.-]` replaced by '_',
/// safe to embed in a file name (run labels contain '/' separators).
std::string SanitizeRunLabel(const std::string& label);

/// Builds a fresh detector for (spec, score), runs every series of the
/// corpus and averages the metrics.
MetricSummary EvaluateAlgorithmOnCorpus(const core::AlgorithmSpec& spec,
                                        core::ScoreType score,
                                        const data::Corpus& corpus,
                                        const EvalConfig& config);

/// One row of Table III: the metrics averaged over the two anomaly scores
/// (average / anomaly likelihood), exactly as the paper reports them.
MetricSummary EvaluateTable3Row(const core::AlgorithmSpec& spec,
                                const data::Corpus& corpus,
                                const EvalConfig& config);

/// The anomaly-score ablation rows at the bottom of Table III: one summary
/// per score type, averaged over all 26 algorithms of Table I.
struct ScoreAblation {
  MetricSummary raw;
  MetricSummary average;
  MetricSummary anomaly_likelihood;
};

ScoreAblation EvaluateScoreAblation(const data::Corpus& corpus,
                                    const EvalConfig& config);

}  // namespace streamad::harness

#endif  // STREAMAD_HARNESS_EXPERIMENT_H_
