#include "src/harness/table_printer.h"

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "src/common/check.h"

namespace streamad::harness {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  STREAMAD_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  STREAMAD_CHECK_MSG(row.size() == header_.size(), "row width mismatch");
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() {
  rows_.push_back({kSeparatorTag});
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorTag) continue;
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << std::left
          << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    out << " |\n";
  };
  auto print_separator = [&]() {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
    }
    out << "-|\n";
  };

  print_separator();
  print_row(header_);
  print_separator();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorTag) {
      print_separator();
    } else {
      print_row(row);
    }
  }
  print_separator();
}

void TablePrinter::Print() const { Print(std::cout); }

std::string TablePrinter::Num(double value, int digits) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(digits) << value;
  return ss.str();
}

}  // namespace streamad::harness
