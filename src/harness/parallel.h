#ifndef STREAMAD_HARNESS_PARALLEL_H_
#define STREAMAD_HARNESS_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>

#include "src/common/check.h"

namespace streamad::harness {

/// Runs `work(i)` for every `i` in `[0, count)` on up to `max_threads`
/// worker threads (hardware concurrency by default, capped at `count`).
///
/// The Table III sweeps evaluate 26 algorithms x 3 anomaly scores per
/// corpus; every evaluation is an independent, deterministic detector run,
/// so the sweep parallelises embarrassingly. Work items are handed out via
/// an atomic counter, which keeps long items (KSWIN detectors) from
/// serialising behind a static partition.
///
/// `work` must be safe to call concurrently for distinct `i` (the harness
/// writes each result into a distinct pre-allocated slot). Exceptions are
/// not used in this codebase; a CHECK failure in any worker aborts the
/// process as usual.
void ParallelFor(std::size_t count,
                 const std::function<void(std::size_t)>& work,
                 std::size_t max_threads = 0);

/// A bounded multi-producer FIFO with a non-blocking, three-outcome push —
/// the ingestion primitive of the serving layer's shard queues
/// (src/serve/fleet.h). Producers never block: a full queue REJECTS the
/// item and a queue at or above the watermark accepts it but reports
/// `kAboveWatermark`, which the fleet surfaces to callers as explicit
/// backpressure. The consumer side blocks in `Pop` until an item arrives
/// or the queue is closed and drained; items come out in push order, which
/// is what preserves per-session ordering when one consumer owns a shard.
template <typename T>
class BoundedQueue {
 public:
  enum class Push {
    /// Enqueued; the queue is comfortably below the watermark.
    kAccepted,
    /// Enqueued, but the queue depth reached the watermark — the producer
    /// should slow down.
    kAboveWatermark,
    /// Not enqueued: the queue is at capacity (or closed).
    kRejected,
  };

  /// `watermark` of 0 derives 3/4 of `capacity` (at least 1).
  explicit BoundedQueue(std::size_t capacity, std::size_t watermark = 0)
      : capacity_(capacity),
        watermark_(watermark == 0 ? (capacity * 3 + 3) / 4 : watermark) {
    STREAMAD_CHECK_MSG(capacity_ > 0, "queue capacity must be positive");
    STREAMAD_CHECK_MSG(watermark_ <= capacity_,
                       "watermark must not exceed capacity");
  }

  /// Never blocks. Thread-safe against concurrent pushes and pops.
  ///
  /// `stamp` is an opaque caller-provided tag carried alongside the item
  /// and handed back by `Pop` — the serving layer stamps a monotonic
  /// enqueue time here so consumers can attribute queue wait without the
  /// harness itself reading any clock (0 = unstamped).
  Push TryPush(T value, std::uint64_t stamp = 0) {
    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return Push::kRejected;
      items_.push_back(Entry{std::move(value), stamp});
      depth = items_.size();
      depth_.store(depth, std::memory_order_relaxed);
    }
    ready_.notify_one();
    return depth >= watermark_ ? Push::kAboveWatermark : Push::kAccepted;
  }

  /// Batch variant of `TryPush`: admits up to `count` items under ONE
  /// lock acquisition (this is the fleet's batch-ingress reservation —
  /// per-item `TryPush` would take the queue lock once per event).
  /// Items are moved from `values[0..count)`, with the matching tag from
  /// `stamps` (null = all unstamped). Returns the number admitted — less
  /// than `count` only when capacity ran out or the queue is closed; the
  /// tail `values[admitted..count)` is untouched. `*base_depth` receives
  /// the queue depth just before the first item landed, so callers can
  /// reconstruct each item's post-push depth (`base_depth + i + 1`) and
  /// report the same accepted/above-watermark outcome a lone `TryPush`
  /// would have.
  std::size_t TryPushMany(T* values, const std::uint64_t* stamps,
                          std::size_t count, std::size_t* base_depth) {
    std::size_t admitted = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (base_depth != nullptr) *base_depth = items_.size();
      if (!closed_) {
        while (admitted < count && items_.size() < capacity_) {
          items_.push_back(Entry{std::move(values[admitted]),
                                 stamps == nullptr ? 0 : stamps[admitted]});
          ++admitted;
        }
        depth_.store(items_.size(), std::memory_order_relaxed);
      }
    }
    // One consumer owns each shard queue, so a single wake suffices no
    // matter how many items landed.
    if (admitted > 0) ready_.notify_one();
    return admitted;
  }

  /// Blocks until an item is available (returns true) or the queue has
  /// been closed and fully drained (returns false). When `stamp` is
  /// non-null it receives the tag the producer pushed with the item.
  bool Pop(T* out, std::uint64_t* stamp = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front().value);
    if (stamp != nullptr) *stamp = items_.front().stamp;
    items_.pop_front();
    depth_.store(items_.size(), std::memory_order_relaxed);
    return true;
  }

  /// After closing, pushes are rejected; pops drain the remaining items.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  /// Lock-free depth snapshot (updated inside push/pop while the lock is
  /// held). Exact for a quiesced queue; during concurrent traffic it is a
  /// momentarily-stale reading — which is all the per-event queue-depth
  /// gauge and the watchdog need, without another lock acquisition on the
  /// serving hot path.
  std::size_t size() const { return depth_.load(std::memory_order_relaxed); }

  std::size_t capacity() const { return capacity_; }
  std::size_t watermark() const { return watermark_; }

 private:
  struct Entry {
    T value;
    std::uint64_t stamp;
  };

  const std::size_t capacity_;
  const std::size_t watermark_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Entry> items_;
  std::atomic<std::size_t> depth_{0};
  bool closed_ = false;
};

}  // namespace streamad::harness

#endif  // STREAMAD_HARNESS_PARALLEL_H_
