#ifndef STREAMAD_HARNESS_PARALLEL_H_
#define STREAMAD_HARNESS_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace streamad::harness {

/// Runs `work(i)` for every `i` in `[0, count)` on up to `max_threads`
/// worker threads (hardware concurrency by default, capped at `count`).
///
/// The Table III sweeps evaluate 26 algorithms x 3 anomaly scores per
/// corpus; every evaluation is an independent, deterministic detector run,
/// so the sweep parallelises embarrassingly. Work items are handed out via
/// an atomic counter, which keeps long items (KSWIN detectors) from
/// serialising behind a static partition.
///
/// `work` must be safe to call concurrently for distinct `i` (the harness
/// writes each result into a distinct pre-allocated slot). Exceptions are
/// not used in this codebase; a CHECK failure in any worker aborts the
/// process as usual.
void ParallelFor(std::size_t count,
                 const std::function<void(std::size_t)>& work,
                 std::size_t max_threads = 0);

}  // namespace streamad::harness

#endif  // STREAMAD_HARNESS_PARALLEL_H_
