#ifndef STREAMAD_HARNESS_FINETUNE_FORK_H_
#define STREAMAD_HARNESS_FINETUNE_FORK_H_

#include <cstdint>
#include <vector>

#include "src/core/algorithm_spec.h"
#include "src/data/series.h"

namespace streamad::harness {

/// Configuration of the Figure-1 experiment (paper §V-B): after concept
/// drift is detected and the model fine-tuned, an artificial anomaly is
/// inserted shortly after; the fine-tuned model and the stale "previous"
/// model score it side by side.
struct FinetuneForkConfig {
  /// The paper's setup: a USAD model, sliding window, μ/σ-Change, on a
  /// Daphnet-style stream.
  core::AlgorithmSpec spec = {core::ModelType::kUsad,
                              core::Task1::kSlidingWindow,
                              core::Task2::kMuSigma};
  core::DetectorConfig params;
  std::uint64_t seed = 11;

  /// Stream construction.
  std::size_t channels = 9;
  std::size_t length = 4000;
  /// Step at which the (unlabeled) concept drift starts.
  std::size_t drift_start = 2200;
  /// Anomaly placement relative to the detected fine-tune: the paper
  /// inserts it at +90 with length 20 (Figure 1: "90 - 110").
  std::size_t anomaly_offset = 90;
  std::size_t anomaly_length = 20;
  /// Spike magnitude in channel standard deviations. Strong enough that
  /// the stale model's clamped cosine nonconformity cannot hide it in its
  /// post-drift noise floor.
  double anomaly_magnitude = 6.0;

  FinetuneForkConfig() {
    params.window = 40;
    params.train_capacity = 150;
    params.initial_train_steps = 800;
    params.scorer_k = 50;
    params.scorer_k_short = 5;
  }
};

/// The Figure-1 error-bar quantities for one model variant.
struct ForkSideResult {
  /// Mean nonconformity between the fine-tune and the anomaly onset.
  double pre_anomaly_mean = 0.0;
  /// Standard deviation of the same pre-anomaly stretch — the noise floor
  /// an anomaly must rise above. The paper argues fine-tuning lowers this
  /// variance, "which would help in distinguishing anomalous scores".
  double pre_anomaly_std = 0.0;
  /// Maximum nonconformity observed during the anomaly's influence (the
  /// anomaly steps plus the following `window` steps, while the anomaly is
  /// still inside the data representation).
  double peak = 0.0;
  /// `peak - pre_anomaly_mean` — the length of the paper's error bar.
  double gap() const { return peak - pre_anomaly_mean; }
  /// The error bar in units of the pre-anomaly noise floor: how clearly
  /// the anomaly separates from this model's normal scores.
  double normalized_gap() const {
    return gap() / (pre_anomaly_std > 1e-9 ? pre_anomaly_std : 1e-9);
  }
};

struct FinetuneForkResult {
  std::size_t drift_start = 0;
  /// Step of the first fine-tune after the drift (the fork point).
  std::size_t finetune_step = 0;
  /// Anomaly segment, absolute steps.
  std::size_t anomaly_begin = 0;
  std::size_t anomaly_end = 0;

  ForkSideResult finetuned;  // model fine-tuned at the fork point
  ForkSideResult stale;      // "previous" model, fine-tuning suppressed

  /// The paper's headline observation: after fine-tuning, the anomaly
  /// separates from the model's normal scores more clearly. Measured in
  /// noise-floor units — the stale model's nonconformity is both elevated
  /// and noisy after the drift (its [0, 1]-clamped scores can even span a
  /// larger absolute range), so the fair comparison is signal-to-noise.
  bool finetuned_gap_larger() const {
    return finetuned.normalized_gap() > stale.normalized_gap();
  }
};

/// Runs the full fork experiment. Deterministic given the config.
FinetuneForkResult RunFinetuneForkExperiment(const FinetuneForkConfig& config);

/// The drifting gait-like stream the experiment runs on (exposed for tests
/// and the drift_adaptation example): quasi-periodic multichannel signal,
/// clean prefix, cadence/amplitude drift from `drift_start` on. No
/// labelled anomalies; the experiment injects its own.
data::LabeledSeries MakeDriftStream(const FinetuneForkConfig& config);

}  // namespace streamad::harness

#endif  // STREAMAD_HARNESS_FINETUNE_FORK_H_
