#ifndef STREAMAD_NN_OPTIMIZER_H_
#define STREAMAD_NN_OPTIMIZER_H_

#include <vector>

#include "src/nn/layer.h"

namespace streamad::nn {

/// Applies accumulated gradients to parameters — the `Opt` function of the
/// paper's fine-tuning rule `θ_model,t = θ_model,t-1 - grads`.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies `p->grad` to `p->value` (and updates optimizer state).
  /// Does not zero the gradient; callers decide the accumulation window.
  virtual void Step(Parameter* p) = 0;

  /// Convenience: steps every parameter then zeroes all gradients.
  void StepAll(const std::vector<Parameter*>& params);
};

/// Plain stochastic gradient descent `θ ← θ - lr * g`.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double learning_rate) : lr_(learning_rate) {}
  void Step(Parameter* p) override;

 private:
  double lr_;
};

/// Adam (Kingma & Ba) with per-parameter first/second moment estimates.
/// Used to train the AE / USAD / N-BEATS models; SGD is used by Online
/// ARIMA, following the online-gradient-descent formulation of Liu et al.
class Adam : public Optimizer {
 public:
  explicit Adam(double learning_rate, double beta1 = 0.9,
                double beta2 = 0.999, double epsilon = 1e-8)
      : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(epsilon) {}
  void Step(Parameter* p) override;

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
};

}  // namespace streamad::nn

#endif  // STREAMAD_NN_OPTIMIZER_H_
