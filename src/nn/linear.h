#ifndef STREAMAD_NN_LINEAR_H_
#define STREAMAD_NN_LINEAR_H_

#include "src/common/rng.h"
#include "src/nn/layer.h"

namespace streamad::nn {

/// Fully connected layer `y = x W + b` with `x: batch x in`,
/// `W: in x out`, `b: 1 x out` — the `FC_i(x) = σ(x W_i + b_i)` building
/// block of the paper's AE, USAD and N-BEATS models (the nonlinearity is a
/// separate activation layer).
class Linear : public Layer {
 public:
  /// Glorot-uniform initialised layer. The RNG is caller-provided so whole
  /// models initialise deterministically from one seed.
  Linear(std::size_t in_features, std::size_t out_features, Rng* rng);

  void ForwardInto(const linalg::Matrix& input, Cache* cache,
                   linalg::Matrix* output) const override;
  void BackwardInto(const linalg::Matrix& grad_output, const Cache& cache,
                    bool accumulate_param_grads,
                    linalg::Matrix* grad_input) override;
  std::vector<Parameter*> Params() override { return {&weight_, &bias_}; }

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }

  const Parameter& weight() const { return weight_; }
  const Parameter& bias() const { return bias_; }
  Parameter* mutable_weight() { return &weight_; }
  Parameter* mutable_bias() { return &bias_; }

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  Parameter weight_;
  Parameter bias_;
  // Per-layer scratch for the weight-gradient product `xᵀ g` in
  // `BackwardInto` — computing it into reused storage and then Axpy-ing
  // into `weight_.grad` keeps the accumulation order (and hence the bits)
  // of the original `grad += MatMul(Transpose(x), g)` formulation while
  // avoiding a heap allocation per backward pass.
  linalg::Matrix dw_scratch_;
};

}  // namespace streamad::nn

#endif  // STREAMAD_NN_LINEAR_H_
