#ifndef STREAMAD_NN_LAYER_H_
#define STREAMAD_NN_LAYER_H_

#include <vector>

#include "src/linalg/matrix.h"

namespace streamad::nn {

/// A trainable tensor together with its accumulated gradient and optimizer
/// state. Layers own their `Parameter`s; optimizers mutate them in place.
struct Parameter {
  linalg::Matrix value;
  linalg::Matrix grad;

  // Adam moment estimates, lazily sized by the optimizer on first use.
  linalg::Matrix adam_m;
  linalg::Matrix adam_v;
  long adam_steps = 0;

  /// Zeroes the accumulated gradient (allocating it on first use).
  void ZeroGrad() {
    if (grad.rows() != value.rows() || grad.cols() != value.cols()) {
      grad = linalg::Matrix(value.rows(), value.cols());
    } else {
      grad.Fill(0.0);
    }
  }
};

/// Base class for differentiable layers.
///
/// Forward passes are *stateless*: all activations needed by the backward
/// pass are written into a caller-owned `Cache`. This matters for USAD
/// (paper §IV-C), whose loss evaluates the shared encoder on two different
/// inputs within a single training step — with layer-internal caching the
/// second forward would clobber the tape of the first.
///
/// The primary entry points are the out-parameter `ForwardInto` /
/// `BackwardInto`, which write into caller-owned matrices so the
/// steady-state detector loop performs no heap allocation (the cache and
/// output matrices reuse their buffers across steps once shapes settle).
/// The by-value `Forward` / `Backward` wrappers keep the original
/// convenience API for tests and one-off use.
class Layer {
 public:
  /// Activation tape for one forward pass through one layer. Each layer
  /// records only what its backward pass reads (Linear: input; Sigmoid /
  /// Tanh: output; Relu: input).
  struct Cache {
    linalg::Matrix input;
    linalg::Matrix output;
  };

  virtual ~Layer() = default;
  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the layer output for a batch (rows = samples) into `*output`
  /// and records the tape in `*cache`. `output` must not alias `input`.
  virtual void ForwardInto(const linalg::Matrix& input, Cache* cache,
                           linalg::Matrix* output) const = 0;

  /// Propagates `grad_output` (dL/d output) back through the tape recorded
  /// in `cache`, writing dL/d input into `*grad_input` (must not alias
  /// `grad_output`). When `accumulate_param_grads` is true, parameter
  /// gradients are added into `Parameter::grad`; when false the pass is
  /// gradient-transparent (used to route gradients *through* a frozen
  /// subnetwork, e.g. through D2 when updating AE1 in USAD).
  virtual void BackwardInto(const linalg::Matrix& grad_output,
                            const Cache& cache, bool accumulate_param_grads,
                            linalg::Matrix* grad_input) = 0;

  /// By-value convenience wrapper over `ForwardInto`.
  linalg::Matrix Forward(const linalg::Matrix& input, Cache* cache) const {
    linalg::Matrix out;
    ForwardInto(input, cache, &out);
    return out;
  }

  /// By-value convenience wrapper over `BackwardInto`.
  linalg::Matrix Backward(const linalg::Matrix& grad_output,
                          const Cache& cache, bool accumulate_param_grads) {
    linalg::Matrix grad_input;
    BackwardInto(grad_output, cache, accumulate_param_grads, &grad_input);
    return grad_input;
  }

  /// The layer's trainable parameters (empty for activations).
  virtual std::vector<Parameter*> Params() { return {}; }
};

}  // namespace streamad::nn

#endif  // STREAMAD_NN_LAYER_H_
