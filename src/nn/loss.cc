#include "src/nn/loss.h"

#include <cmath>

#include "src/common/check.h"

namespace streamad::nn {

// STREAMAD_HOT: per-step reconstruction error
double MseLoss(const linalg::Matrix& pred, const linalg::Matrix& target) {
  STREAMAD_CHECK(pred.size() == target.size());
  STREAMAD_CHECK(pred.size() > 0);
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred.at_flat(i) - target.at_flat(i);
    s += d * d;
  }
  return s / static_cast<double>(pred.size());
}

linalg::Matrix MseLossGrad(const linalg::Matrix& pred,
                           const linalg::Matrix& target) {
  linalg::Matrix g;
  MseLossGradInto(pred, target, &g);
  return g;
}

// STREAMAD_HOT
void MseLossGradInto(const linalg::Matrix& pred, const linalg::Matrix& target,
                     linalg::Matrix* grad) {
  STREAMAD_CHECK(grad != nullptr && grad != &pred && grad != &target);
  STREAMAD_CHECK(pred.rows() == target.rows() &&
                 pred.cols() == target.cols());
  STREAMAD_CHECK(pred.size() > 0);
  linalg::SubInto(pred, target, grad);
  const double scale = 2.0 / static_cast<double>(pred.size());
  for (std::size_t i = 0; i < grad->size(); ++i) grad->at_flat(i) *= scale;
}

// STREAMAD_HOT
double L2Error(const linalg::Matrix& pred, const linalg::Matrix& target) {
  STREAMAD_CHECK(pred.rows() == target.rows() &&
                 pred.cols() == target.cols());
  // Frobenius norm of (pred - target) without materialising the
  // difference; same flat summation order as Sub + FrobeniusNorm, so the
  // result is bit-identical to the former allocating form.
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred.at_flat(i) - target.at_flat(i);
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace streamad::nn
