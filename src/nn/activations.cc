#include "src/nn/activations.h"

#include <cmath>

namespace streamad::nn {

// STREAMAD_HOT
void Sigmoid::ForwardInto(const linalg::Matrix& input, Cache* cache,
                          linalg::Matrix* output) const {
  STREAMAD_CHECK(cache != nullptr);
  STREAMAD_CHECK(output != nullptr);
  output->EnsureShape(input.rows(), input.cols());
  for (std::size_t i = 0; i < input.size(); ++i) {
    output->at_flat(i) = 1.0 / (1.0 + std::exp(-input.at_flat(i)));
  }
  cache->output = *output;
}

// STREAMAD_HOT
void Sigmoid::BackwardInto(const linalg::Matrix& grad_output,
                           const Cache& cache, bool /*accumulate*/,
                           linalg::Matrix* grad_input) {
  STREAMAD_CHECK(grad_input != nullptr);
  STREAMAD_CHECK(grad_output.size() == cache.output.size());
  grad_input->EnsureShape(grad_output.rows(), grad_output.cols());
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    const double y = cache.output.at_flat(i);
    grad_input->at_flat(i) = grad_output.at_flat(i) * (y * (1.0 - y));
  }
}

// STREAMAD_HOT
void Relu::ForwardInto(const linalg::Matrix& input, Cache* cache,
                       linalg::Matrix* output) const {
  STREAMAD_CHECK(cache != nullptr);
  STREAMAD_CHECK(output != nullptr);
  output->EnsureShape(input.rows(), input.cols());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const double v = input.at_flat(i);
    output->at_flat(i) = v < 0.0 ? 0.0 : v;
  }
  cache->input = input;
}

// STREAMAD_HOT
void Relu::BackwardInto(const linalg::Matrix& grad_output,
                        const Cache& cache, bool /*accumulate*/,
                        linalg::Matrix* grad_input) {
  STREAMAD_CHECK(grad_input != nullptr);
  STREAMAD_CHECK(grad_output.size() == cache.input.size());
  grad_input->EnsureShape(grad_output.rows(), grad_output.cols());
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    grad_input->at_flat(i) =
        cache.input.at_flat(i) <= 0.0 ? 0.0 : grad_output.at_flat(i);
  }
}

// STREAMAD_HOT
void Tanh::ForwardInto(const linalg::Matrix& input, Cache* cache,
                       linalg::Matrix* output) const {
  STREAMAD_CHECK(cache != nullptr);
  STREAMAD_CHECK(output != nullptr);
  output->EnsureShape(input.rows(), input.cols());
  for (std::size_t i = 0; i < input.size(); ++i) {
    output->at_flat(i) = std::tanh(input.at_flat(i));
  }
  cache->output = *output;
}

// STREAMAD_HOT
void Tanh::BackwardInto(const linalg::Matrix& grad_output,
                        const Cache& cache, bool /*accumulate*/,
                        linalg::Matrix* grad_input) {
  STREAMAD_CHECK(grad_input != nullptr);
  STREAMAD_CHECK(grad_output.size() == cache.output.size());
  grad_input->EnsureShape(grad_output.rows(), grad_output.cols());
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    const double y = cache.output.at_flat(i);
    grad_input->at_flat(i) = grad_output.at_flat(i) * (1.0 - y * y);
  }
}

}  // namespace streamad::nn
