#include "src/nn/activations.h"

#include <cmath>

namespace streamad::nn {

linalg::Matrix Sigmoid::Forward(const linalg::Matrix& input,
                                Cache* cache) const {
  STREAMAD_CHECK(cache != nullptr);
  linalg::Matrix out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.at_flat(i) = 1.0 / (1.0 + std::exp(-out.at_flat(i)));
  }
  cache->output = out;
  return out;
}

linalg::Matrix Sigmoid::Backward(const linalg::Matrix& grad_output,
                                 const Cache& cache,
                                 bool /*accumulate_param_grads*/) {
  STREAMAD_CHECK(grad_output.size() == cache.output.size());
  linalg::Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const double y = cache.output.at_flat(i);
    grad.at_flat(i) *= y * (1.0 - y);
  }
  return grad;
}

linalg::Matrix Relu::Forward(const linalg::Matrix& input,
                             Cache* cache) const {
  STREAMAD_CHECK(cache != nullptr);
  linalg::Matrix out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out.at_flat(i) < 0.0) out.at_flat(i) = 0.0;
  }
  cache->input = input;
  return out;
}

linalg::Matrix Relu::Backward(const linalg::Matrix& grad_output,
                              const Cache& cache,
                              bool /*accumulate_param_grads*/) {
  STREAMAD_CHECK(grad_output.size() == cache.input.size());
  linalg::Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (cache.input.at_flat(i) <= 0.0) grad.at_flat(i) = 0.0;
  }
  return grad;
}

linalg::Matrix Tanh::Forward(const linalg::Matrix& input,
                             Cache* cache) const {
  STREAMAD_CHECK(cache != nullptr);
  linalg::Matrix out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.at_flat(i) = std::tanh(out.at_flat(i));
  }
  cache->output = out;
  return out;
}

linalg::Matrix Tanh::Backward(const linalg::Matrix& grad_output,
                              const Cache& cache,
                              bool /*accumulate_param_grads*/) {
  STREAMAD_CHECK(grad_output.size() == cache.output.size());
  linalg::Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const double y = cache.output.at_flat(i);
    grad.at_flat(i) *= 1.0 - y * y;
  }
  return grad;
}

}  // namespace streamad::nn
