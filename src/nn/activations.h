#ifndef STREAMAD_NN_ACTIVATIONS_H_
#define STREAMAD_NN_ACTIVATIONS_H_

#include "src/nn/layer.h"

namespace streamad::nn {

/// Elementwise logistic sigmoid `σ(x) = 1 / (1 + e^{-x})` — the
/// nonlinearity the paper writes for its autoencoder layers.
class Sigmoid : public Layer {
 public:
  void ForwardInto(const linalg::Matrix& input, Cache* cache,
                   linalg::Matrix* output) const override;
  void BackwardInto(const linalg::Matrix& grad_output, const Cache& cache,
                    bool accumulate_param_grads,
                    linalg::Matrix* grad_input) override;
};

/// Elementwise rectified linear unit, used in the N-BEATS block FC stack.
class Relu : public Layer {
 public:
  void ForwardInto(const linalg::Matrix& input, Cache* cache,
                   linalg::Matrix* output) const override;
  void BackwardInto(const linalg::Matrix& grad_output, const Cache& cache,
                    bool accumulate_param_grads,
                    linalg::Matrix* grad_input) override;
};

/// Elementwise hyperbolic tangent.
class Tanh : public Layer {
 public:
  void ForwardInto(const linalg::Matrix& input, Cache* cache,
                   linalg::Matrix* output) const override;
  void BackwardInto(const linalg::Matrix& grad_output, const Cache& cache,
                    bool accumulate_param_grads,
                    linalg::Matrix* grad_input) override;
};

}  // namespace streamad::nn

#endif  // STREAMAD_NN_ACTIVATIONS_H_
