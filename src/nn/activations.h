#ifndef STREAMAD_NN_ACTIVATIONS_H_
#define STREAMAD_NN_ACTIVATIONS_H_

#include "src/nn/layer.h"

namespace streamad::nn {

/// Elementwise logistic sigmoid `σ(x) = 1 / (1 + e^{-x})` — the
/// nonlinearity the paper writes for its autoencoder layers.
class Sigmoid : public Layer {
 public:
  linalg::Matrix Forward(const linalg::Matrix& input,
                         Cache* cache) const override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output,
                          const Cache& cache,
                          bool accumulate_param_grads) override;
};

/// Elementwise rectified linear unit, used in the N-BEATS block FC stack.
class Relu : public Layer {
 public:
  linalg::Matrix Forward(const linalg::Matrix& input,
                         Cache* cache) const override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output,
                          const Cache& cache,
                          bool accumulate_param_grads) override;
};

/// Elementwise hyperbolic tangent.
class Tanh : public Layer {
 public:
  linalg::Matrix Forward(const linalg::Matrix& input,
                         Cache* cache) const override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output,
                          const Cache& cache,
                          bool accumulate_param_grads) override;
};

}  // namespace streamad::nn

#endif  // STREAMAD_NN_ACTIVATIONS_H_
