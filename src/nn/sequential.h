#ifndef STREAMAD_NN_SEQUENTIAL_H_
#define STREAMAD_NN_SEQUENTIAL_H_

#include <memory>
#include <vector>

#include "src/nn/layer.h"

namespace streamad::nn {

/// An ordered stack of layers applied back to back — the encoder / decoder
/// building block of the AE and USAD models.
///
/// Like `Layer`, the forward pass is stateless: the per-layer tapes for one
/// pass live in a caller-owned `Tape`, so the same `Sequential` can appear
/// several times in one computation graph (USAD's encoder does).
class Sequential {
 public:
  /// Tape for one forward pass through the whole stack.
  struct Tape {
    std::vector<Layer::Cache> layers;
  };

  Sequential() = default;
  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Appends a layer; returns *this for fluent construction.
  Sequential& Add(std::unique_ptr<Layer> layer);

  std::size_t num_layers() const { return layers_.size(); }

  /// Runs the stack on `input` (batch rows), recording the tape.
  linalg::Matrix Forward(const linalg::Matrix& input, Tape* tape) const;

  /// Convenience forward without keeping the tape (inference).
  linalg::Matrix Infer(const linalg::Matrix& input) const;

  /// Backpropagates through the recorded tape. Parameter gradients are
  /// accumulated only when `accumulate_param_grads` is true; gradients are
  /// always propagated to the returned input gradient.
  linalg::Matrix Backward(const linalg::Matrix& grad_output, const Tape& tape,
                          bool accumulate_param_grads);

  /// All trainable parameters of all layers, in order.
  std::vector<Parameter*> Params();

  /// Zeroes the gradients of all parameters.
  void ZeroGrads();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace streamad::nn

#endif  // STREAMAD_NN_SEQUENTIAL_H_
