#ifndef STREAMAD_NN_SEQUENTIAL_H_
#define STREAMAD_NN_SEQUENTIAL_H_

#include <memory>
#include <vector>

#include "src/nn/layer.h"

namespace streamad::nn {

/// An ordered stack of layers applied back to back — the encoder / decoder
/// building block of the AE and USAD models.
///
/// Like `Layer`, the forward pass is stateless: the per-layer tapes for one
/// pass live in a caller-owned `Tape`, so the same `Sequential` can appear
/// several times in one computation graph (USAD's encoder does).
class Sequential {
 public:
  /// Tape for one forward pass through the whole stack. Besides the
  /// per-layer caches it owns the ping-pong activation buffers the stack
  /// alternates between, so a tape reused across steps makes
  /// `ForwardInto` / `BackwardInto` allocation-free once shapes settle.
  struct Tape {
    std::vector<Layer::Cache> layers;
    // Intermediate activations ping-pong between these two buffers.
    linalg::Matrix buf_a;
    linalg::Matrix buf_b;
    // Gradient counterparts; mutable because `BackwardInto` reads the tape
    // through a const reference but still needs scratch to chain layers.
    mutable linalg::Matrix gbuf_a;
    mutable linalg::Matrix gbuf_b;
  };

  Sequential() = default;
  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Appends a layer; returns *this for fluent construction.
  Sequential& Add(std::unique_ptr<Layer> layer);

  std::size_t num_layers() const { return layers_.size(); }

  /// Runs the stack on `input` (batch rows), recording the tape and writing
  /// the final activation into `*output` (must not alias `input` or the
  /// tape's buffers).
  void ForwardInto(const linalg::Matrix& input, Tape* tape,
                   linalg::Matrix* output) const;

  /// By-value convenience wrapper over `ForwardInto`.
  linalg::Matrix Forward(const linalg::Matrix& input, Tape* tape) const;

  /// Convenience forward without keeping the tape (inference).
  linalg::Matrix Infer(const linalg::Matrix& input) const;

  /// Backpropagates through the recorded tape into `*grad_input` (must not
  /// alias `grad_output` or the tape's buffers). Parameter gradients are
  /// accumulated only when `accumulate_param_grads` is true; gradients are
  /// always propagated to the input gradient.
  void BackwardInto(const linalg::Matrix& grad_output, const Tape& tape,
                    bool accumulate_param_grads,
                    linalg::Matrix* grad_input);

  /// By-value convenience wrapper over `BackwardInto`.
  linalg::Matrix Backward(const linalg::Matrix& grad_output, const Tape& tape,
                          bool accumulate_param_grads);

  /// All trainable parameters of all layers, in order.
  std::vector<Parameter*> Params();

  /// Zeroes the gradients of all parameters.
  void ZeroGrads();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace streamad::nn

#endif  // STREAMAD_NN_SEQUENTIAL_H_
