#include "src/nn/gradient_check.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace streamad::nn {

double MaxGradError(const std::vector<Parameter*>& params,
                    const std::function<double()>& loss_fn, double epsilon) {
  STREAMAD_CHECK(epsilon > 0.0);
  double worst = 0.0;
  for (Parameter* p : params) {
    STREAMAD_CHECK(p != nullptr);
    STREAMAD_CHECK(p->grad.size() == p->value.size());
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const double saved = p->value.at_flat(i);
      p->value.at_flat(i) = saved + epsilon;
      const double plus = loss_fn();
      p->value.at_flat(i) = saved - epsilon;
      const double minus = loss_fn();
      p->value.at_flat(i) = saved;
      const double numeric = (plus - minus) / (2.0 * epsilon);
      const double analytic = p->grad.at_flat(i);
      const double denom =
          std::max(1.0, std::fabs(analytic) + std::fabs(numeric));
      worst = std::max(worst, std::fabs(analytic - numeric) / denom);
    }
  }
  return worst;
}

}  // namespace streamad::nn
