#include "src/nn/linear.h"

#include <cmath>

namespace streamad::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng* rng)
    : in_features_(in_features), out_features_(out_features) {
  STREAMAD_CHECK(rng != nullptr);
  STREAMAD_CHECK(in_features > 0 && out_features > 0);
  weight_.value = linalg::Matrix(in_features, out_features);
  bias_.value = linalg::Matrix(1, out_features);
  const double limit = std::sqrt(
      6.0 / static_cast<double>(in_features + out_features));
  for (std::size_t i = 0; i < weight_.value.size(); ++i) {
    weight_.value.at_flat(i) = rng->Uniform(-limit, limit);
  }
  weight_.ZeroGrad();
  bias_.ZeroGrad();
}

// STREAMAD_HOT: per-step forward pass
void Linear::ForwardInto(const linalg::Matrix& input, Cache* cache,
                         linalg::Matrix* output) const {
  STREAMAD_CHECK(cache != nullptr);
  STREAMAD_CHECK(output != nullptr);
  STREAMAD_CHECK_MSG(input.cols() == in_features_, "Linear input width");
  linalg::MatMulInto(input, weight_.value, output);
  linalg::AddRowBroadcastInPlace(bias_.value, output);
  cache->input = input;
}

// STREAMAD_HOT: per-finetune backward pass
void Linear::BackwardInto(const linalg::Matrix& grad_output,
                          const Cache& cache, bool accumulate_param_grads,
                          linalg::Matrix* grad_input) {
  STREAMAD_CHECK(grad_input != nullptr);
  STREAMAD_CHECK(grad_output.rows() == cache.input.rows());
  STREAMAD_CHECK(grad_output.cols() == out_features_);
  if (accumulate_param_grads) {
    // dL/dW = xᵀ g ; dL/db = column sums of g. The fused kernel skips the
    // explicit transpose.
    linalg::MatMulTransAInto(cache.input, grad_output, &dw_scratch_);
    // NOLINT-STREAMAD-NEXTLINE(hot-alloc): Axpy accumulates in place —
    linalg::Axpy(1.0, dw_scratch_, &weight_.grad);
    for (std::size_t r = 0; r < grad_output.rows(); ++r) {
      for (std::size_t c = 0; c < grad_output.cols(); ++c) {
        bias_.grad(0, c) += grad_output(r, c);
      }
    }
  }
  // dL/dx = g Wᵀ, fused.
  linalg::MatMulTransBInto(grad_output, weight_.value, grad_input);
}

}  // namespace streamad::nn
