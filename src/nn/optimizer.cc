#include "src/nn/optimizer.h"

#include <cmath>

#include "src/common/check.h"

namespace streamad::nn {

void Optimizer::StepAll(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    STREAMAD_CHECK(p != nullptr);
    Step(p);
    p->ZeroGrad();
  }
}

void Sgd::Step(Parameter* p) {
  STREAMAD_CHECK(p != nullptr);
  STREAMAD_CHECK(p->grad.size() == p->value.size());
  linalg::Axpy(-lr_, p->grad, &p->value);
}

void Adam::Step(Parameter* p) {
  STREAMAD_CHECK(p != nullptr);
  STREAMAD_CHECK(p->grad.size() == p->value.size());
  if (p->adam_m.size() != p->value.size()) {
    p->adam_m = linalg::Matrix(p->value.rows(), p->value.cols());
    p->adam_v = linalg::Matrix(p->value.rows(), p->value.cols());
    p->adam_steps = 0;
  }
  ++p->adam_steps;
  const double bc1 = 1.0 - std::pow(beta1_, p->adam_steps);
  const double bc2 = 1.0 - std::pow(beta2_, p->adam_steps);
  for (std::size_t i = 0; i < p->value.size(); ++i) {
    const double g = p->grad.at_flat(i);
    double& m = p->adam_m.at_flat(i);
    double& v = p->adam_v.at_flat(i);
    m = beta1_ * m + (1.0 - beta1_) * g;
    v = beta2_ * v + (1.0 - beta2_) * g * g;
    const double m_hat = m / bc1;
    const double v_hat = v / bc2;
    p->value.at_flat(i) -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
  }
}

}  // namespace streamad::nn
