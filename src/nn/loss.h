#ifndef STREAMAD_NN_LOSS_H_
#define STREAMAD_NN_LOSS_H_

#include "src/linalg/matrix.h"

namespace streamad::nn {

/// Mean squared error `L = (1/n) Σ (pred - target)²` over all elements.
double MseLoss(const linalg::Matrix& pred, const linalg::Matrix& target);

/// Gradient of `MseLoss` with respect to `pred`: `2 (pred - target) / n`.
linalg::Matrix MseLossGrad(const linalg::Matrix& pred,
                           const linalg::Matrix& target);

/// Out-parameter form of `MseLossGrad`; `grad` must not alias the inputs.
void MseLossGradInto(const linalg::Matrix& pred, const linalg::Matrix& target,
                     linalg::Matrix* grad);

/// L2 reconstruction error `||pred - target||_2` over the flattened
/// matrices — the `R_i = ||x - AE_i(x)||_2` terms of USAD's losses.
double L2Error(const linalg::Matrix& pred, const linalg::Matrix& target);

}  // namespace streamad::nn

#endif  // STREAMAD_NN_LOSS_H_
