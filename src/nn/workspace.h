#ifndef STREAMAD_NN_WORKSPACE_H_
#define STREAMAD_NN_WORKSPACE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/linalg/matrix.h"

namespace streamad::nn {

/// A pool of scratch matrices reused across steps.
///
/// The training loops of the neural models need a handful of temporaries
/// per optimizer step (mini-batch staging, loss gradients, the adversarial
/// gradient sums of USAD, the per-block temporaries of N-BEATS). Allocating
/// them per step made `Finetune` — which runs on the hot streaming path —
/// heap-bound. A `Workspace` hands out stable `Matrix*` slots instead:
///
///   ws.Reset();                      // once per step
///   linalg::Matrix* g = ws.Acquire(rows, cols);
///
/// `Acquire` reshapes an existing slot via `Matrix::EnsureShape`, so after
/// the first step at the high-water-mark shape, no acquisition touches the
/// heap. Slots are handed out in call order; callers must acquire in a
/// deterministic order per step (all call sites do — the order is the
/// program order of the training step). Slot contents are unspecified at
/// acquisition; treat them as uninitialised output buffers.
///
/// Not thread-safe; each model owns its workspace, matching the library's
/// one-detector-per-thread execution model.
class Workspace {
 public:
  /// Returns a matrix slot of the given shape. Pointers remain stable for
  /// the lifetime of the workspace (slots are heap-allocated once).
  linalg::Matrix* Acquire(std::size_t rows, std::size_t cols) {
    if (cursor_ == slots_.size()) {
      slots_.push_back(std::make_unique<linalg::Matrix>());
    }
    linalg::Matrix* slot = slots_[cursor_++].get();
    slot->EnsureShape(rows, cols);
    return slot;
  }

  /// Returns all slots to the pool; previously acquired pointers must no
  /// longer be used (the next `Acquire` sequence will hand them out again).
  void Reset() { cursor_ = 0; }

  std::size_t slot_count() const { return slots_.size(); }

 private:
  std::vector<std::unique_ptr<linalg::Matrix>> slots_;
  std::size_t cursor_ = 0;
};

}  // namespace streamad::nn

#endif  // STREAMAD_NN_WORKSPACE_H_
