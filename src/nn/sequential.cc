#include "src/nn/sequential.h"

namespace streamad::nn {

Sequential& Sequential::Add(std::unique_ptr<Layer> layer) {
  STREAMAD_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
  return *this;
}

// STREAMAD_HOT: ping-pong tape forward, zero steady-state allocations
void Sequential::ForwardInto(const linalg::Matrix& input, Tape* tape,
                             linalg::Matrix* output) const {
  STREAMAD_CHECK(tape != nullptr);
  STREAMAD_CHECK(output != nullptr);
  // Resize (not assign) so the caches inside a reused tape keep their
  // buffers; `assign` would destroy and reallocate every cache matrix.
  if (tape->layers.size() != layers_.size()) {
    tape->layers.resize(layers_.size());
  }
  if (layers_.empty()) {
    *output = input;
    return;
  }
  const linalg::Matrix* cur = &input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    linalg::Matrix* dst = (i + 1 == layers_.size())
                              ? output
                              : (i % 2 == 0 ? &tape->buf_a : &tape->buf_b);
    layers_[i]->ForwardInto(*cur, &tape->layers[i], dst);
    cur = dst;
  }
}

linalg::Matrix Sequential::Forward(const linalg::Matrix& input,
                                   Tape* tape) const {
  linalg::Matrix out;
  ForwardInto(input, tape, &out);
  return out;
}

linalg::Matrix Sequential::Infer(const linalg::Matrix& input) const {
  Tape tape;
  return Forward(input, &tape);
}

// STREAMAD_HOT
void Sequential::BackwardInto(const linalg::Matrix& grad_output,
                              const Tape& tape, bool accumulate_param_grads,
                              linalg::Matrix* grad_input) {
  STREAMAD_CHECK(grad_input != nullptr);
  STREAMAD_CHECK_MSG(tape.layers.size() == layers_.size(),
                     "tape does not match network");
  if (layers_.empty()) {
    *grad_input = grad_output;
    return;
  }
  const linalg::Matrix* cur = &grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    linalg::Matrix* dst =
        (i == 0) ? grad_input : (i % 2 == 0 ? &tape.gbuf_a : &tape.gbuf_b);
    layers_[i]->BackwardInto(*cur, tape.layers[i], accumulate_param_grads,
                             dst);
    cur = dst;
  }
}

linalg::Matrix Sequential::Backward(const linalg::Matrix& grad_output,
                                    const Tape& tape,
                                    bool accumulate_param_grads) {
  linalg::Matrix grad_input;
  BackwardInto(grad_output, tape, accumulate_param_grads, &grad_input);
  return grad_input;
}

std::vector<Parameter*> Sequential::Params() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Params()) out.push_back(p);
  }
  return out;
}

void Sequential::ZeroGrads() {
  for (Parameter* p : Params()) p->ZeroGrad();
}

}  // namespace streamad::nn
