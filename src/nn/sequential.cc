#include "src/nn/sequential.h"

namespace streamad::nn {

Sequential& Sequential::Add(std::unique_ptr<Layer> layer) {
  STREAMAD_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
  return *this;
}

linalg::Matrix Sequential::Forward(const linalg::Matrix& input,
                                   Tape* tape) const {
  STREAMAD_CHECK(tape != nullptr);
  tape->layers.assign(layers_.size(), Layer::Cache{});
  linalg::Matrix x = input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    x = layers_[i]->Forward(x, &tape->layers[i]);
  }
  return x;
}

linalg::Matrix Sequential::Infer(const linalg::Matrix& input) const {
  Tape tape;
  return Forward(input, &tape);
}

linalg::Matrix Sequential::Backward(const linalg::Matrix& grad_output,
                                    const Tape& tape,
                                    bool accumulate_param_grads) {
  STREAMAD_CHECK_MSG(tape.layers.size() == layers_.size(),
                     "tape does not match network");
  linalg::Matrix g = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i]->Backward(g, tape.layers[i], accumulate_param_grads);
  }
  return g;
}

std::vector<Parameter*> Sequential::Params() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Params()) out.push_back(p);
  }
  return out;
}

void Sequential::ZeroGrads() {
  for (Parameter* p : Params()) p->ZeroGrad();
}

}  // namespace streamad::nn
