#ifndef STREAMAD_NN_GRADIENT_CHECK_H_
#define STREAMAD_NN_GRADIENT_CHECK_H_

#include <functional>

#include "src/nn/sequential.h"

namespace streamad::nn {

/// Finite-difference gradient verification used by the test suite.
///
/// `loss_fn` must evaluate the full forward + loss for the current parameter
/// values (it is invoked many times with perturbed parameters). The analytic
/// gradient is expected to already be accumulated in `Parameter::grad`.
/// Returns the maximum relative error over all parameter elements:
/// `|analytic - numeric| / max(1, |analytic| + |numeric|)`.
double MaxGradError(const std::vector<Parameter*>& params,
                    const std::function<double()>& loss_fn,
                    double epsilon = 1e-5);

}  // namespace streamad::nn

#endif  // STREAMAD_NN_GRADIENT_CHECK_H_
