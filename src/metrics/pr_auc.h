#ifndef STREAMAD_METRICS_PR_AUC_H_
#define STREAMAD_METRICS_PR_AUC_H_

#include <vector>

namespace streamad::metrics {

/// Area under the interval-based precision-recall curve (paper §V-A, the
/// "AUC" column of Table III): the anomaly-score threshold is swept over
/// the empirical quantiles, range precision / recall are computed at each
/// (Hundman counting), the curve is completed with the (recall=0,
/// precision=1) endpoint and integrated over recall with the trapezoid
/// rule.
///
/// `max_thresholds` bounds the sweep; `scores` and `labels` must align.
///
/// Degenerate operating points are excluded: a threshold that flags more
/// than `max_flag_fraction` of all points produces one stream-spanning
/// predicted interval that trivially overlaps every anomaly (range
/// precision = recall = 1), which would let any detector reach a perfect
/// curve. Capping the flagged fraction keeps the sweep to operating
/// points a monitoring system could actually deploy.
double RangePrAuc(const std::vector<double>& scores,
                  const std::vector<int>& labels,
                  std::size_t max_thresholds = 100,
                  double max_flag_fraction = 0.3);

/// The best (threshold, precision, recall) by F1 over the same sweep —
/// the operating point the per-corpus Prec / Rec columns report.
struct BestOperatingPoint {
  double threshold = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Thresholds flagging more than `max_flag_fraction` of the stream are
/// excluded (see `RangePrAuc`); if every candidate exceeds the cap, the
/// strictest threshold is returned.
BestOperatingPoint BestF1OperatingPoint(const std::vector<double>& scores,
                                        const std::vector<int>& labels,
                                        std::size_t max_thresholds = 100,
                                        double max_flag_fraction = 0.3);

}  // namespace streamad::metrics

#endif  // STREAMAD_METRICS_PR_AUC_H_
