#include "src/metrics/vus.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/metrics/intervals.h"

namespace streamad::metrics {

std::vector<double> BufferedLabels(const std::vector<int>& labels,
                                   std::size_t buffer) {
  std::vector<double> soft(labels.size(), 0.0);
  for (std::size_t t = 0; t < labels.size(); ++t) {
    if (labels[t] != 0) soft[t] = 1.0;
  }
  if (buffer == 0) return soft;
  for (const Interval& range : IntervalsFromLabels(labels)) {
    for (std::size_t d = 1; d <= buffer; ++d) {
      const double ramp = 1.0 - static_cast<double>(d) /
                                    static_cast<double>(buffer + 1);
      if (range.begin >= d) {
        const std::size_t t = range.begin - d;
        soft[t] = std::max(soft[t], ramp);
      }
      const std::size_t after = range.end + d - 1;
      if (after < soft.size()) {
        soft[after] = std::max(soft[after], ramp);
      }
    }
  }
  return soft;
}

namespace {

/// Point-wise PR area with continuous labels: TP(θ) = Σ_{score≥θ} soft(t),
/// precision = TP / |claimed|, recall = TP / Σ soft.
double SoftPrArea(const std::vector<double>& scores,
                  const std::vector<double>& soft,
                  std::size_t max_thresholds) {
  double total_positive = 0.0;
  for (double s : soft) total_positive += s;
  if (total_positive <= 0.0) return 0.0;

  struct Point {
    double recall;
    double precision;
  };
  std::vector<Point> curve;
  for (double threshold : ThresholdCandidates(scores, max_thresholds)) {
    double tp = 0.0;
    std::size_t claimed = 0;
    for (std::size_t t = 0; t < scores.size(); ++t) {
      if (scores[t] >= threshold) {
        tp += soft[t];
        ++claimed;
      }
    }
    const double precision =
        claimed == 0 ? 1.0 : tp / static_cast<double>(claimed);
    curve.push_back({tp / total_positive, precision});
  }
  curve.push_back({0.0, 1.0});
  std::sort(curve.begin(), curve.end(), [](const Point& a, const Point& b) {
    return a.recall < b.recall ||
           (a.recall == b.recall && a.precision > b.precision);
  });
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    area += (curve[i].recall - curve[i - 1].recall) * 0.5 *
            (curve[i].precision + curve[i - 1].precision);
  }
  return area;
}

}  // namespace

double VolumeUnderPrSurface(const std::vector<double>& scores,
                            const std::vector<int>& labels,
                            const VusParams& params) {
  STREAMAD_CHECK(scores.size() == labels.size());
  STREAMAD_CHECK(!scores.empty());
  STREAMAD_CHECK(params.buffer_step > 0);
  double volume = 0.0;
  std::size_t slices = 0;
  for (std::size_t buffer = 0; buffer <= params.max_buffer;
       buffer += params.buffer_step) {
    volume += SoftPrArea(scores, BufferedLabels(labels, buffer),
                         params.max_thresholds);
    ++slices;
  }
  return volume / static_cast<double>(slices);
}

}  // namespace streamad::metrics
