#ifndef STREAMAD_METRICS_VUS_H_
#define STREAMAD_METRICS_VUS_H_

#include <vector>

namespace streamad::metrics {

/// Volume under the surface (paper §V-A, after Paparrizos et al.), PR
/// variant: point-wise precision / recall with *buffered* continuous
/// labels.
///
/// For each buffer width ℓ in {0, step, 2·step, ..., max_buffer} the 0/1
/// labels are softened with a linear ramp of width ℓ on both sides of
/// every anomaly range; a point-wise PR curve over the score thresholds is
/// integrated to an area; the volume is the mean area over all ℓ — a
/// parameter-free metric combining point-wise scores with tolerance for
/// near-miss predictions at range borders.
struct VusParams {
  std::size_t max_buffer = 20;
  std::size_t buffer_step = 5;
  std::size_t max_thresholds = 50;
};

/// VUS-PR in [0, 1].
double VolumeUnderPrSurface(const std::vector<double>& scores,
                            const std::vector<int>& labels,
                            const VusParams& params = VusParams());

/// The soft labels for one buffer width (exposed for tests): 1 inside an
/// anomaly, linear ramp down to 0 over `buffer` steps outside its borders.
std::vector<double> BufferedLabels(const std::vector<int>& labels,
                                   std::size_t buffer);

}  // namespace streamad::metrics

#endif  // STREAMAD_METRICS_VUS_H_
