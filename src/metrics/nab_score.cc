#include "src/metrics/nab_score.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace streamad::metrics {

double NabSigmoid(double y) { return 2.0 / (1.0 + std::exp(5.0 * y)) - 1.0; }

double NabScoreAt(const std::vector<double>& scores,
                  const std::vector<int>& labels, double threshold,
                  const NabParams& params) {
  STREAMAD_CHECK(scores.size() == labels.size());
  const std::vector<Interval> windows = IntervalsFromLabels(labels);
  if (windows.empty()) return 0.0;

  double raw = 0.0;
  // Rewards: the earliest detection within each window.
  for (const Interval& window : windows) {
    double best = -params.fn_weight;  // missed window until proven otherwise
    for (std::size_t t = window.begin; t < window.end; ++t) {
      if (scores[t] >= threshold) {
        // Relative position: window start maps to -1, end to 0.
        const double y =
            (static_cast<double>(t) - static_cast<double>(window.end)) /
            static_cast<double>(window.length());
        best = NabSigmoid(y);
        break;  // only the earliest detection counts
      }
    }
    raw += best;
  }
  // Penalties: every detection step outside all windows.
  std::size_t w_idx = 0;
  for (std::size_t t = 0; t < scores.size(); ++t) {
    while (w_idx < windows.size() && windows[w_idx].end <= t) ++w_idx;
    const bool inside =
        w_idx < windows.size() && t >= windows[w_idx].begin &&
        t < windows[w_idx].end;
    if (!inside && scores[t] >= threshold) raw -= params.fp_weight;
  }
  return raw / static_cast<double>(windows.size());
}

double NabScoreBestThreshold(const std::vector<double>& scores,
                             const std::vector<int>& labels,
                             std::size_t max_thresholds,
                             const NabParams& params) {
  STREAMAD_CHECK(!scores.empty());
  double best = -std::numeric_limits<double>::infinity();
  for (double threshold : ThresholdCandidates(scores, max_thresholds)) {
    best = std::max(best, NabScoreAt(scores, labels, threshold, params));
  }
  return best;
}

}  // namespace streamad::metrics
