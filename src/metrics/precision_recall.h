#ifndef STREAMAD_METRICS_PRECISION_RECALL_H_
#define STREAMAD_METRICS_PRECISION_RECALL_H_

#include <vector>

#include "src/metrics/intervals.h"

namespace streamad::metrics {

/// Interval-based (range) confusion counts following Hundman et al.
/// (paper §V-A): a ground-truth anomaly sequence with at least one
/// positively predicted step counts as one TP; with none, one FN; a
/// predicted sequence with no overlap to any true sequence counts as one
/// FP. A long run of consecutive false alarms is therefore a *single* FP —
/// the source of the paper's "high precision, very negative NAB" effect.
struct RangeConfusion {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
};

/// Computes the range confusion between ground-truth and predicted
/// intervals.
RangeConfusion ComputeRangeConfusion(
    const std::vector<Interval>& truth,
    const std::vector<Interval>& predicted);

/// Precision / recall from range counts. Conventions: with no predictions
/// at all, precision is 1 (nothing claimed, nothing wrong); with no true
/// anomalies, recall is 1.
struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
};

PrecisionRecall ComputePrecisionRecall(const RangeConfusion& confusion);

/// End-to-end convenience: threshold `scores`, derive intervals from the
/// point labels, and return range precision / recall.
PrecisionRecall RangePrecisionRecallAt(const std::vector<double>& scores,
                                       const std::vector<int>& labels,
                                       double threshold);

}  // namespace streamad::metrics

#endif  // STREAMAD_METRICS_PRECISION_RECALL_H_
