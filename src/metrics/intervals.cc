#include "src/metrics/intervals.h"

#include <algorithm>

#include "src/common/check.h"

namespace streamad::metrics {

std::vector<Interval> IntervalsFromLabels(const std::vector<int>& labels) {
  std::vector<Interval> intervals;
  std::size_t start = 0;
  bool open = false;
  for (std::size_t t = 0; t < labels.size(); ++t) {
    const bool positive = labels[t] != 0;
    if (positive && !open) {
      start = t;
      open = true;
    } else if (!positive && open) {
      intervals.push_back({start, t});
      open = false;
    }
  }
  if (open) intervals.push_back({start, labels.size()});
  return intervals;
}

std::vector<Interval> IntervalsFromScores(const std::vector<double>& scores,
                                          double threshold) {
  std::vector<int> labels(scores.size());
  for (std::size_t t = 0; t < scores.size(); ++t) {
    labels[t] = scores[t] >= threshold ? 1 : 0;
  }
  return IntervalsFromLabels(labels);
}

std::vector<double> ThresholdCandidates(const std::vector<double>& scores,
                                        std::size_t max_candidates) {
  STREAMAD_CHECK(max_candidates >= 2);
  std::vector<double> sorted = scores;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  if (sorted.empty()) return {0.0};
  if (sorted.size() <= max_candidates) return sorted;
  std::vector<double> out;
  out.reserve(max_candidates);
  for (std::size_t i = 0; i < max_candidates; ++i) {
    const std::size_t idx =
        i * (sorted.size() - 1) / (max_candidates - 1);
    out.push_back(sorted[idx]);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace streamad::metrics
