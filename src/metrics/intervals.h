#ifndef STREAMAD_METRICS_INTERVALS_H_
#define STREAMAD_METRICS_INTERVALS_H_

#include <cstddef>
#include <vector>

namespace streamad::metrics {

/// A half-open index range `[begin, end)` of time steps — a ground-truth
/// anomaly sequence or a predicted one.
struct Interval {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t length() const { return end - begin; }
  bool Overlaps(const Interval& other) const {
    return begin < other.end && other.begin < end;
  }
  friend bool operator==(const Interval& a, const Interval& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// Maximal runs of non-zero labels as intervals, in order.
std::vector<Interval> IntervalsFromLabels(const std::vector<int>& labels);

/// Maximal runs of `scores[t] >= threshold` as predicted intervals.
std::vector<Interval> IntervalsFromScores(const std::vector<double>& scores,
                                          double threshold);

/// Up to `max_candidates` threshold candidates spread over the empirical
/// quantiles of `scores` (deduplicated, ascending). Shared by the
/// threshold-sweeping metrics (PR-AUC, NAB, VUS).
std::vector<double> ThresholdCandidates(const std::vector<double>& scores,
                                        std::size_t max_candidates);

}  // namespace streamad::metrics

#endif  // STREAMAD_METRICS_INTERVALS_H_
