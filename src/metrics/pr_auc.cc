#include "src/metrics/pr_auc.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/metrics/precision_recall.h"

namespace streamad::metrics {

namespace {

struct CurvePoint {
  double recall;
  double precision;
};

double FlaggedFraction(const std::vector<double>& scores, double threshold) {
  std::size_t flagged = 0;
  for (double s : scores) flagged += s >= threshold ? 1 : 0;
  return static_cast<double>(flagged) / static_cast<double>(scores.size());
}

std::vector<CurvePoint> SweepCurve(const std::vector<double>& scores,
                                   const std::vector<int>& labels,
                                   std::size_t max_thresholds,
                                   double max_flag_fraction) {
  STREAMAD_CHECK(scores.size() == labels.size());
  STREAMAD_CHECK(!scores.empty());
  const std::vector<Interval> truth = IntervalsFromLabels(labels);
  std::vector<CurvePoint> curve;
  for (double threshold : ThresholdCandidates(scores, max_thresholds)) {
    if (FlaggedFraction(scores, threshold) > max_flag_fraction) continue;
    const PrecisionRecall pr = ComputePrecisionRecall(ComputeRangeConfusion(
        truth, IntervalsFromScores(scores, threshold)));
    curve.push_back({pr.recall, pr.precision});
  }
  // Anchor at (0, 1): an infinitely strict threshold claims nothing.
  curve.push_back({0.0, 1.0});
  std::sort(curve.begin(), curve.end(),
            [](const CurvePoint& a, const CurvePoint& b) {
              return a.recall < b.recall ||
                     (a.recall == b.recall && a.precision > b.precision);
            });
  return curve;
}

}  // namespace

double RangePrAuc(const std::vector<double>& scores,
                  const std::vector<int>& labels,
                  std::size_t max_thresholds, double max_flag_fraction) {
  const std::vector<CurvePoint> curve =
      SweepCurve(scores, labels, max_thresholds, max_flag_fraction);
  double auc = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double dr = curve[i].recall - curve[i - 1].recall;
    auc += dr * 0.5 * (curve[i].precision + curve[i - 1].precision);
  }
  return auc;
}

BestOperatingPoint BestF1OperatingPoint(const std::vector<double>& scores,
                                        const std::vector<int>& labels,
                                        std::size_t max_thresholds,
                                        double max_flag_fraction) {
  STREAMAD_CHECK(scores.size() == labels.size());
  STREAMAD_CHECK(!scores.empty());
  const std::vector<Interval> truth = IntervalsFromLabels(labels);
  const std::vector<double> candidates =
      ThresholdCandidates(scores, max_thresholds);
  BestOperatingPoint best;
  best.threshold = candidates.back();  // strictest fallback
  bool any_valid = false;
  for (double threshold : candidates) {
    if (FlaggedFraction(scores, threshold) > max_flag_fraction) continue;
    const PrecisionRecall pr = ComputePrecisionRecall(ComputeRangeConfusion(
        truth, IntervalsFromScores(scores, threshold)));
    const double denom = pr.precision + pr.recall;
    const double f1 =
        denom > 0.0 ? 2.0 * pr.precision * pr.recall / denom : 0.0;
    if (!any_valid || f1 > best.f1) {
      best = {threshold, pr.precision, pr.recall, f1};
      any_valid = true;
    }
  }
  if (!any_valid) {
    const PrecisionRecall pr = ComputePrecisionRecall(ComputeRangeConfusion(
        truth, IntervalsFromScores(scores, best.threshold)));
    const double denom = pr.precision + pr.recall;
    best.precision = pr.precision;
    best.recall = pr.recall;
    best.f1 = denom > 0.0 ? 2.0 * pr.precision * pr.recall / denom : 0.0;
  }
  return best;
}

}  // namespace streamad::metrics
