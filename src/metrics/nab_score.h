#ifndef STREAMAD_METRICS_NAB_SCORE_H_
#define STREAMAD_METRICS_NAB_SCORE_H_

#include <vector>

#include "src/metrics/intervals.h"

namespace streamad::metrics {

/// Numenta Anomaly Benchmark scoring (paper §V-A, after Lavin & Ahmad).
///
/// Point-wise detections (score >= threshold) are judged against the
/// ground-truth anomaly windows:
///  * the earliest detection inside each window earns a sigmoidal reward —
///    close to 1 at the window start, decaying towards 0 at its end
///    (rewarding early detection);
///  * every detection step outside all windows costs `fp_weight`;
///  * every missed window costs `fn_weight`.
///
/// The sum is normalised by the number of windows, so a perfect detector
/// approaches 1 while an always-firing one diverges towards large negative
/// values — each false-alarm step contributes −fp_weight/|anomalies|,
/// which is exactly the behaviour the paper describes for its very
/// negative Table III entries.
struct NabParams {
  double fp_weight = 0.11;  // NAB "standard profile" A_FP
  double fn_weight = 1.0;   // A_FN
};

/// NAB score at a fixed detection threshold.
double NabScoreAt(const std::vector<double>& scores,
                  const std::vector<int>& labels, double threshold,
                  const NabParams& params = NabParams());

/// NAB score at the best threshold over a quantile sweep — NAB's usual
/// per-detector threshold optimisation.
double NabScoreBestThreshold(const std::vector<double>& scores,
                             const std::vector<int>& labels,
                             std::size_t max_thresholds = 100,
                             const NabParams& params = NabParams());

/// The scaled-sigmoid positional weight used for rewards: position `y` in
/// [-1, 0] relative to the window (start = -1, end = 0) maps to ~0.98
/// down to 0. Exposed for tests.
double NabSigmoid(double y);

}  // namespace streamad::metrics

#endif  // STREAMAD_METRICS_NAB_SCORE_H_
