#include "src/metrics/precision_recall.h"

#include "src/common/check.h"

namespace streamad::metrics {

RangeConfusion ComputeRangeConfusion(const std::vector<Interval>& truth,
                                     const std::vector<Interval>& predicted) {
  RangeConfusion confusion;
  for (const Interval& anomaly : truth) {
    bool hit = false;
    for (const Interval& pred : predicted) {
      if (anomaly.Overlaps(pred)) {
        hit = true;
        break;
      }
    }
    if (hit) {
      ++confusion.true_positives;
    } else {
      ++confusion.false_negatives;
    }
  }
  for (const Interval& pred : predicted) {
    bool overlaps_truth = false;
    for (const Interval& anomaly : truth) {
      if (pred.Overlaps(anomaly)) {
        overlaps_truth = true;
        break;
      }
    }
    if (!overlaps_truth) ++confusion.false_positives;
  }
  return confusion;
}

PrecisionRecall ComputePrecisionRecall(const RangeConfusion& confusion) {
  PrecisionRecall pr;
  const std::size_t claimed =
      confusion.true_positives + confusion.false_positives;
  pr.precision = claimed == 0
                     ? 1.0
                     : static_cast<double>(confusion.true_positives) /
                           static_cast<double>(claimed);
  const std::size_t actual =
      confusion.true_positives + confusion.false_negatives;
  pr.recall = actual == 0 ? 1.0
                          : static_cast<double>(confusion.true_positives) /
                                static_cast<double>(actual);
  return pr;
}

PrecisionRecall RangePrecisionRecallAt(const std::vector<double>& scores,
                                       const std::vector<int>& labels,
                                       double threshold) {
  STREAMAD_CHECK(scores.size() == labels.size());
  return ComputePrecisionRecall(
      ComputeRangeConfusion(IntervalsFromLabels(labels),
                            IntervalsFromScores(scores, threshold)));
}

}  // namespace streamad::metrics
