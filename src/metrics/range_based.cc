#include "src/metrics/range_based.h"

#include <algorithm>

#include "src/common/check.h"

namespace streamad::metrics {

namespace {

std::size_t OverlapLength(const Interval& a, const Interval& b) {
  const std::size_t begin = std::max(a.begin, b.begin);
  const std::size_t end = std::min(a.end, b.end);
  return end > begin ? end - begin : 0;
}

/// The per-range score of `range` against the `others` set: existence,
/// overlap fraction and cardinality combined per Tatbul et al. with flat
/// positional bias.
double RangeScore(const Interval& range, const std::vector<Interval>& others,
                  double alpha) {
  std::size_t covered = 0;
  std::size_t overlapping = 0;
  for (const Interval& other : others) {
    const std::size_t overlap = OverlapLength(range, other);
    if (overlap > 0) {
      covered += overlap;
      ++overlapping;
    }
  }
  if (overlapping == 0) return 0.0;
  const double existence = 1.0;
  const double overlap_fraction =
      static_cast<double>(covered) / static_cast<double>(range.length());
  const double cardinality = 1.0 / static_cast<double>(overlapping);
  return alpha * existence +
         (1.0 - alpha) * cardinality * overlap_fraction;
}

}  // namespace

RangeBasedResult RangeBasedPrecisionRecall(
    const std::vector<Interval>& truth,
    const std::vector<Interval>& predicted,
    const RangeBasedParams& params) {
  STREAMAD_CHECK(params.alpha >= 0.0 && params.alpha <= 1.0);
  RangeBasedResult result;

  if (truth.empty()) {
    result.recall = 1.0;
  } else {
    double total = 0.0;
    for (const Interval& range : truth) {
      total += RangeScore(range, predicted, params.alpha);
    }
    result.recall = total / static_cast<double>(truth.size());
  }

  if (predicted.empty()) {
    result.precision = 1.0;
  } else {
    double total = 0.0;
    for (const Interval& range : predicted) {
      // Precision has no existence reward in Tatbul et al. (alpha = 0):
      // a predicted range earns only for the fraction covering anomalies.
      total += RangeScore(range, truth, /*alpha=*/0.0);
    }
    result.precision = total / static_cast<double>(predicted.size());
  }

  const double denom = result.precision + result.recall;
  result.f1 =
      denom > 0.0 ? 2.0 * result.precision * result.recall / denom : 0.0;
  return result;
}

RangeBasedResult RangeBasedPrecisionRecallAt(
    const std::vector<double>& scores, const std::vector<int>& labels,
    double threshold, const RangeBasedParams& params) {
  STREAMAD_CHECK(scores.size() == labels.size());
  return RangeBasedPrecisionRecall(IntervalsFromLabels(labels),
                                   IntervalsFromScores(scores, threshold),
                                   params);
}

}  // namespace streamad::metrics
