#ifndef STREAMAD_METRICS_RANGE_BASED_H_
#define STREAMAD_METRICS_RANGE_BASED_H_

#include <vector>

#include "src/metrics/intervals.h"

namespace streamad::metrics {

/// Range-based precision / recall after Tatbul et al. (NeurIPS 2018) — a
/// finer-grained alternative to the Hundman point-adjust counting used in
/// the paper's Table III (shipped as a metrics extension; see DESIGN.md).
///
/// For each real anomaly range R and the set of predicted ranges P, the
/// recall of R combines
///   * existence       — was R detected at all,
///   * overlap size    — how much of R is covered,
///   * cardinality     — is R covered by one prediction or fragmented.
/// Precision is symmetric (how much of each predicted range covers real
/// anomalies). The final scores average over ranges.
///
/// This implementation uses the flat positional bias (all positions in a
/// range weigh equally) and the reciprocal cardinality factor `1/x` for a
/// range overlapped by `x` predictions.
struct RangeBasedParams {
  /// Weight of the existence reward inside recall, `alpha` in the paper
  /// (0 = pure overlap, 1 = pure existence).
  double alpha = 0.0;
};

struct RangeBasedResult {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Computes range-based precision / recall between ground-truth and
/// predicted intervals. With no predictions, precision is 1 by
/// convention; with no real anomalies, recall is 1.
RangeBasedResult RangeBasedPrecisionRecall(
    const std::vector<Interval>& truth, const std::vector<Interval>& predicted,
    const RangeBasedParams& params = RangeBasedParams());

/// Convenience overload thresholding a score stream.
RangeBasedResult RangeBasedPrecisionRecallAt(
    const std::vector<double>& scores, const std::vector<int>& labels,
    double threshold, const RangeBasedParams& params = RangeBasedParams());

}  // namespace streamad::metrics

#endif  // STREAMAD_METRICS_RANGE_BASED_H_
