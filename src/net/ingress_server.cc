#include "src/net/ingress_server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/net/socket_util.h"
#include "src/obs/metrics.h"

namespace streamad::net {

namespace {

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Frame-size buckets: the protocol spans single-event batches (~tens of
/// bytes) to the 16 MiB payload cap, so the bounds are geometric.
std::vector<double> FrameSizeBounds() {
  return {64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0};
}

}  // namespace

IngressServer::IngressServer() : IngressServer(Options()) {}

IngressServer::IngressServer(Options options) : options_(std::move(options)) {}

IngressServer::~IngressServer() { Stop(); }

void IngressServer::set_hooks(Hooks hooks) {
  STREAMAD_CHECK_MSG(!started_, "set_hooks must precede Start");
  hooks_ = std::move(hooks);
}

void IngressServer::AttachMetrics(obs::MetricsRegistry* registry) {
  STREAMAD_CHECK_MSG(!started_, "AttachMetrics must precede Start");
  if (registry == nullptr) return;
  connections_counter_ =
      registry->GetCounter("streamad_ingress_connections_total");
  active_gauge_ = registry->GetGauge("streamad_ingress_connections_active");
  frames_in_counter_ = registry->GetCounter("streamad_ingress_frames_in_total");
  frames_out_counter_ =
      registry->GetCounter("streamad_ingress_frames_out_total");
  bytes_in_counter_ = registry->GetCounter("streamad_ingress_bytes_in_total");
  bytes_out_counter_ = registry->GetCounter("streamad_ingress_bytes_out_total");
  decode_errors_counter_ =
      registry->GetCounter("streamad_ingress_decode_errors_total");
  nacks_counter_ =
      registry->GetCounter("streamad_ingress_protocol_nacks_total");
  overflow_disconnects_counter_ =
      registry->GetCounter("streamad_ingress_overflow_disconnects_total");
  frame_in_bytes_ =
      registry->GetHistogram("streamad_ingress_frame_in_bytes",
                             FrameSizeBounds());
  frame_out_bytes_ =
      registry->GetHistogram("streamad_ingress_frame_out_bytes",
                             FrameSizeBounds());
}

core::Status IngressServer::Start(std::uint16_t port) {
  if (started_) return core::Status::FailedPrecondition("already started");

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    return core::Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  if (!SetNonBlocking(pipe_fds[0]) || !SetNonBlocking(pipe_fds[1])) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return core::Status::IoError("could not make wake pipe non-blocking");
  }

  ListenerSocket listener;
  if (core::Status status = BindLoopbackListener(port, /*backlog=*/64,
                                                 &listener);
      !status.ok()) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return status;
  }
  if (!SetNonBlocking(listener.fd)) {
    ::close(listener.fd);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return core::Status::IoError("could not make listener non-blocking");
  }

  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  listen_fd_ = listener.fd;
  port_ = listener.port;
  stop_requested_.store(false, std::memory_order_release);
  started_ = true;
  loop_ = std::thread([this] { Loop(); });
  return core::Status::Ok();
}

void IngressServer::Stop() {
  if (!started_) return;
  stop_requested_.store(true, std::memory_order_release);
  WakeLoop();
  if (loop_.joinable()) loop_.join();
  ::close(listen_fd_);
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
  started_ = false;
}

void IngressServer::FlagPending(ConnectionId id) {
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.insert(id);
  }
  WakeLoop();
}

void IngressServer::WakeLoop() {
  // A full pipe already guarantees a pending wake-up; EAGAIN is fine.
  char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void IngressServer::Loop() {
  std::vector<pollfd> fds;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    fds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : connections_) {
      short events = POLLIN;
      if (conn.out_sent < conn.outbuf.size()) events |= POLLOUT;
      fds.push_back(pollfd{fd, events, 0});
    }

    int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                       /*timeout=*/-1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stop_requested_.load(std::memory_order_acquire)) break;

    if ((fds[1].revents & POLLIN) != 0) {
      char scratch[256];
      while (::read(wake_read_fd_, scratch, sizeof(scratch)) > 0) {
      }
    }
    DrainPendingFlags();

    if ((fds[0].revents & POLLIN) != 0) AcceptNew();

    for (std::size_t i = 2; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      int fd = fds[i].fd;
      // POLLERR / POLLHUP surface through recv (0 or error) in
      // HandleReadable, so error bits are folded into the read path.
      if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        auto it = connections_.find(fd);
        if (it != connections_.end()) HandleReadable(&it->second);
      }
      if ((fds[i].revents & POLLOUT) != 0) {
        auto it = connections_.find(fd);  // re-find: read may have closed it
        if (it != connections_.end()) HandleWritable(&it->second);
      }
    }
  }

  // Loop exit: tear down every live connection on the loop thread, which
  // owns the map.
  std::vector<int> open_fds;
  open_fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) open_fds.push_back(fd);
  for (int fd : open_fds) {
    auto it = connections_.find(fd);
    if (it != connections_.end()) CloseConnection(&it->second);
  }
}

void IngressServer::AcceptNew() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // EAGAIN ends the accept burst; transient errors (ECONNABORTED)
      // just drop that one connection attempt.
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    Connection conn;
    conn.id = next_id_++;
    conn.fd = fd;
    id_to_fd_[conn.id] = fd;
    connections_.emplace(fd, std::move(conn));
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    connections_total_.fetch_add(1, std::memory_order_relaxed);
    if (connections_counter_ != nullptr) connections_counter_->Increment();
    if (active_gauge_ != nullptr) {
      active_gauge_->Set(static_cast<double>(
          active_connections_.load(std::memory_order_relaxed)));
    }
  }
}

void IngressServer::HandleReadable(Connection* conn) {
  char buffer[65536];
  while (true) {
    ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      if (bytes_in_counter_ != nullptr) {
        bytes_in_counter_->Add(static_cast<std::uint64_t>(n));
      }
      conn->assembler.Append(
          std::string_view(buffer, static_cast<std::size_t>(n)));
      if (static_cast<std::size_t>(n) < sizeof(buffer)) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Peer closed (n == 0) or hard error: the connection is finished.
    CloseConnection(conn);
    return;
  }

  wire::Frame frame;
  while (!conn->close_after_flush && !conn->overflowed) {
    std::size_t before = conn->assembler.pending_bytes();
    wire::FrameAssembler::Result result = conn->assembler.Next(&frame);
    if (result == wire::FrameAssembler::Result::kNeedMore) break;
    if (result == wire::FrameAssembler::Result::kError) {
      if (decode_errors_counter_ != nullptr) {
        decode_errors_counter_->Increment();
      }
      wire::WireError error = conn->assembler.error();
      wire::NackCode code = error == wire::WireError::kBadVersion
                                ? wire::NackCode::kUnsupportedVersion
                                : wire::NackCode::kMalformed;
      FailConnection(conn, code, wire::ToString(error));
      break;
    }
    if (frames_in_counter_ != nullptr) frames_in_counter_->Increment();
    if (frame_in_bytes_ != nullptr) {
      frame_in_bytes_->Observe(
          static_cast<double>(before - conn->assembler.pending_bytes()));
    }
    HandleFrame(conn, frame);
  }

  if (CloseIfOverflowed(conn)) return;

  // Optimistic flush: most replies fit the socket buffer, so answering in
  // the same poll round spares the extra wake-up.
  if (conn->out_sent < conn->outbuf.size()) HandleWritable(conn);
}

void IngressServer::HandleFrame(Connection* conn, const wire::Frame& frame) {
  switch (frame.type) {
    case wire::FrameType::kHello: {
      if (conn->hello_done) {
        FailConnection(conn, wire::NackCode::kProtocolViolation,
                       "duplicate HELLO");
        return;
      }
      const auto& hello = std::get<wire::HelloFrame>(frame.payload);
      if (hello.proto_version != wire::kWireVersion) {
        FailConnection(conn, wire::NackCode::kUnsupportedVersion,
                       "server speaks wire version " +
                           std::to_string(wire::kWireVersion));
        return;
      }
      conn->hello_done = true;
      wire::HelloAckFrame ack;
      ack.proto_version = wire::kWireVersion;
      ack.features = hello.features & options_.features;
      ack.server = options_.server_name;
      std::string bytes;
      wire::AppendHelloAck(&bytes, ack);
      QueueBytes(conn, bytes);
      return;
    }
    case wire::FrameType::kEventBatch: {
      if (!conn->hello_done) {
        FailConnection(conn, wire::NackCode::kProtocolViolation,
                       "EVENT_BATCH before HELLO");
        return;
      }
      if (hooks_.on_event_batch) {
        QueueBytes(conn, hooks_.on_event_batch(
                             conn->id,
                             std::get<wire::EventBatchFrame>(frame.payload)));
      }
      return;
    }
    case wire::FrameType::kHealthProbe: {
      wire::HealthFrame health;
      if (hooks_.on_health) health = hooks_.on_health();
      std::string bytes;
      wire::AppendHealth(&bytes, health);
      QueueBytes(conn, bytes);
      return;
    }
    case wire::FrameType::kHelloAck:
    case wire::FrameType::kScoreBatch:
    case wire::FrameType::kNack:
    case wire::FrameType::kHealth:
      // Server-to-client frames arriving at the server are a protocol
      // violation, not a decode error.
      FailConnection(conn, wire::NackCode::kProtocolViolation,
                     std::string("unexpected ") + wire::ToString(frame.type));
      return;
  }
}

void IngressServer::FailConnection(Connection* conn, wire::NackCode code,
                                   const std::string& detail) {
  if (nacks_counter_ != nullptr) nacks_counter_->Increment();
  wire::NackFrame nack;
  nack.entries.push_back(wire::NackEntry{0, code, detail});
  std::string bytes;
  wire::AppendNack(&bytes, nack);
  QueueBytes(conn, bytes);
  conn->close_after_flush = true;
}

void IngressServer::QueueBytes(Connection* conn, const std::string& bytes) {
  if (bytes.empty()) return;
  // The bytes are frames we (or the application hook) encoded, so the
  // headers can be trusted for per-frame accounting.
  std::size_t offset = 0;
  while (offset + wire::kFrameHeaderBytes <= bytes.size()) {
    std::uint32_t payload_len = 0;
    std::memcpy(&payload_len, bytes.data() + offset + 6, sizeof(payload_len));
    std::size_t frame_size = wire::kFrameHeaderBytes + payload_len;
    if (frames_out_counter_ != nullptr) frames_out_counter_->Increment();
    if (frame_out_bytes_ != nullptr) {
      frame_out_bytes_->Observe(static_cast<double>(frame_size));
    }
    offset += frame_size;
  }
  conn->outbuf.append(bytes);
  if (conn->outbuf.size() - conn->out_sent > options_.max_outbuf_bytes) {
    conn->overflowed = true;
  }
}

bool IngressServer::CloseIfOverflowed(Connection* conn) {
  if (!conn->overflowed) return false;
  if (overflow_disconnects_counter_ != nullptr) {
    overflow_disconnects_counter_->Increment();
  }
  CloseConnection(conn);
  return true;
}

void IngressServer::HandleWritable(Connection* conn) {
  while (conn->out_sent < conn->outbuf.size()) {
    ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->out_sent,
                       conn->outbuf.size() - conn->out_sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_sent += static_cast<std::size_t>(n);
      if (bytes_out_counter_ != nullptr) {
        bytes_out_counter_->Add(static_cast<std::uint64_t>(n));
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn);
    return;
  }
  // Fully flushed: reclaim the buffer rather than growing forever.
  conn->outbuf.clear();
  conn->out_sent = 0;
  if (conn->close_after_flush) CloseConnection(conn);
}

void IngressServer::CloseConnection(Connection* conn) {
  ConnectionId id = conn->id;
  int fd = conn->fd;
  ::close(fd);
  id_to_fd_.erase(id);
  connections_.erase(fd);  // invalidates conn
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  if (active_gauge_ != nullptr) {
    active_gauge_->Set(static_cast<double>(
        active_connections_.load(std::memory_order_relaxed)));
  }
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.erase(id);
  }
  if (hooks_.on_disconnect) hooks_.on_disconnect(id);
}

void IngressServer::DrainPendingFlags() {
  std::unordered_set<ConnectionId> flagged;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    flagged.swap(pending_);
  }
  if (flagged.empty() || !hooks_.on_drain) return;
  for (ConnectionId id : flagged) {
    auto fd_it = id_to_fd_.find(id);
    if (fd_it == id_to_fd_.end()) continue;  // connection vanished
    auto conn_it = connections_.find(fd_it->second);
    if (conn_it == connections_.end()) continue;
    QueueBytes(&conn_it->second, hooks_.on_drain(id));
    CloseIfOverflowed(&conn_it->second);
  }
}

}  // namespace streamad::net

