#include "src/net/http_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/check.h"
#include "src/net/socket_util.h"

namespace streamad::net {
namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

enum class ReadOutcome {
  kComplete,      // saw the blank-line terminator
  kPeerGone,      // nothing received at all (probe / port scan): stay silent
  kNoTerminator,  // partial request, then close/timeout: diagnosable
  kTooLarge,      // blew through the size cap without terminating
};

/// Reads until the end of the request headers ("\r\n\r\n") or the size
/// cap. The live plane only serves bodyless GETs, so the headers are the
/// whole request.
ReadOutcome ReadRequest(int fd, std::string* out) {
  constexpr std::size_t kMaxRequestBytes = 8192;
  char buffer[1024];
  while (out->size() < kMaxRequestBytes) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      return out->empty() ? ReadOutcome::kPeerGone
                          : ReadOutcome::kNoTerminator;
    }
    out->append(buffer, static_cast<std::size_t>(n));
    if (out->find("\r\n\r\n") != std::string::npos) {
      return ReadOutcome::kComplete;
    }
    // Tolerate bare-LF clients (e.g. hand-typed requests via netcat).
    if (out->find("\n\n") != std::string::npos) return ReadOutcome::kComplete;
  }
  return ReadOutcome::kTooLarge;
}

void WriteAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; nothing useful to do
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& path, Handler handler) {
  STREAMAD_CHECK_MSG(!started_, "register handlers before Start");
  STREAMAD_CHECK_MSG(!path.empty() && path[0] == '/',
                     "handler paths start with '/'");
  handlers_[path] = std::move(handler);
}

void HttpServer::HandlePrefix(const std::string& prefix, Handler handler) {
  STREAMAD_CHECK_MSG(!started_, "register handlers before Start");
  STREAMAD_CHECK_MSG(prefix.size() >= 2 && prefix.front() == '/' &&
                         prefix.back() == '/',
                     "prefix routes start and end with '/'");
  prefix_handlers_.emplace_back(prefix, std::move(handler));
}

const HttpServer::Handler* HttpServer::Route(const std::string& path) const {
  const auto it = handlers_.find(path);
  if (it != handlers_.end()) return &it->second;
  const Handler* best = nullptr;
  std::size_t best_len = 0;
  for (const auto& [prefix, handler] : prefix_handlers_) {
    if (path.size() >= prefix.size() &&
        path.compare(0, prefix.size(), prefix) == 0 &&
        prefix.size() > best_len) {
      best = &handler;
      best_len = prefix.size();
    }
  }
  return best;
}

core::Status HttpServer::Start(std::uint16_t port) {
  if (started_) {
    return core::Status::FailedPrecondition("server already started");
  }
  // Operator plane only: the shared helper binds loopback exclusively.
  ListenerSocket listener;
  if (core::Status status = BindLoopbackListener(port, /*backlog=*/16,
                                                 &listener);
      !status.ok()) {
    return status;
  }
  port_ = listener.port;
  listen_fd_ = listener.fd;
  started_ = true;
  listener_ = std::thread([this] { ListenLoop(); });
  return core::Status::Ok();
}

void HttpServer::Stop() {
  if (!started_) return;
  // Unblocks the accept; the listener then sees the failure and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (listener_.joinable()) listener_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  started_ = false;
}

void HttpServer::ListenLoop() {
  while (true) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // shut down (or the listener broke — either way, stop)
    }
    // Bound how long a stuck client can hold the (single) serving thread.
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ServeConnection(client);
    ::close(client);
  }
}

void HttpServer::ServeConnection(int client_fd) {
  std::string raw;
  HttpResponse response;
  HttpRequest request;
  const ReadOutcome outcome = ReadRequest(client_fd, &raw);
  if (outcome == ReadOutcome::kPeerGone) return;

  if (outcome == ReadOutcome::kTooLarge) {
    response.status = 400;
    response.body = "request exceeds the 8 KiB cap\n";
  } else if (outcome == ReadOutcome::kNoTerminator) {
    response.status = 400;
    response.body = "truncated request: missing blank-line terminator\n";
  } else {
    // Request line: METHOD SP TARGET SP VERSION.
    const std::size_t line_end = raw.find_first_of("\r\n");
    const std::string line = raw.substr(0, line_end);
    const std::size_t method_end = line.find(' ');
    const std::size_t target_end =
        method_end == std::string::npos ? std::string::npos
                                        : line.find(' ', method_end + 1);
    if (method_end == std::string::npos ||
        target_end == std::string::npos || method_end == 0) {
      response.status = 400;
      response.body = "malformed request line\n";
    } else {
      request.method = line.substr(0, method_end);
      std::string target =
          line.substr(method_end + 1, target_end - method_end - 1);
      const std::size_t query_at = target.find('?');
      if (query_at != std::string::npos) {
        request.query = target.substr(query_at + 1);
        target.resize(query_at);
      }
      request.path = std::move(target);
      if (request.path.empty() || request.path[0] != '/' ||
          line.compare(target_end + 1, 5, "HTTP/") != 0) {
        response.status = 400;
        response.body = "malformed request line\n";
      } else if (request.method != "GET" && request.method != "HEAD") {
        response.status = 405;
        response.body = "only GET is served here\n";
      } else {
        const Handler* handler = Route(request.path);
        if (handler == nullptr) {
          response.status = 404;
          response.body = "no handler for " + request.path + "\n";
        } else {
          response = (*handler)(request);
        }
      }
    }
  }

  std::string reply;
  reply.reserve(response.body.size() + 128);
  reply += "HTTP/1.0 ";
  reply += std::to_string(response.status);
  reply += ' ';
  reply += StatusText(response.status);
  reply += "\r\nContent-Type: ";
  reply += response.content_type;
  reply += "\r\nContent-Length: ";
  reply += std::to_string(response.body.size());
  if (response.status == 405) reply += "\r\nAllow: GET, HEAD";
  reply += "\r\nConnection: close\r\n\r\n";
  if (request.method != "HEAD") reply += response.body;
  WriteAll(client_fd, reply);

  if (outcome == ReadOutcome::kTooLarge) {
    // The client is likely still mid-send; closing with unread bytes in
    // the receive buffer makes the kernel RST the connection, which can
    // destroy the queued 400 before it is delivered. Shut our write side
    // and drain a bounded amount (each recv also bounded by the 2 s
    // SO_RCVTIMEO) so the diagnostic actually arrives.
    ::shutdown(client_fd, SHUT_WR);
    char scratch[1024];
    std::size_t drained = 0;
    ssize_t n;
    while (drained < 64 * 1024 &&
           (n = ::recv(client_fd, scratch, sizeof(scratch), 0)) > 0) {
      drained += static_cast<std::size_t>(n);
    }
  }
}

}  // namespace streamad::net
