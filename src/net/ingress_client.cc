#include "src/net/ingress_client.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace streamad::net {

IngressClient::IngressClient() : IngressClient(Options()) {}

IngressClient::IngressClient(Options options) : options_(std::move(options)) {}

IngressClient::~IngressClient() { Close(); }

core::Status IngressClient::Connect(std::uint16_t port) {
  if (fd_ >= 0) return core::Status::FailedPrecondition("already connected");

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return core::Status::IoError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    int saved = errno;
    ::close(fd);
    return core::Status::IoError(std::string("connect: ") +
                                 std::strerror(saved));
  }
  fd_ = fd;
  assembler_ = wire::FrameAssembler();

  wire::HelloFrame hello;
  hello.proto_version = wire::kWireVersion;
  hello.features = options_.features;
  hello.client = options_.client_name;
  std::string bytes;
  wire::AppendHello(&bytes, hello);
  if (core::Status status = SendAll(bytes); !status.ok()) {
    Close();
    return status;
  }

  wire::Frame frame;
  if (core::Status status = ReadFrame(&frame); !status.ok()) {
    Close();
    return status;
  }
  if (frame.type == wire::FrameType::kNack) {
    const auto& nack = std::get<wire::NackFrame>(frame.payload);
    std::string detail = nack.entries.empty() ? std::string("no detail")
                                              : nack.entries.front().detail;
    Close();
    return core::Status::FailedPrecondition("server rejected HELLO: " +
                                            detail);
  }
  if (frame.type != wire::FrameType::kHelloAck) {
    Close();
    return core::Status::DataLoss(std::string("expected HELLO_ACK, got ") +
                                  wire::ToString(frame.type));
  }
  ack_ = std::get<wire::HelloAckFrame>(frame.payload);
  return core::Status::Ok();
}

core::Status IngressClient::SendEventBatch(const wire::EventBatchFrame& batch) {
  if (fd_ < 0) return core::Status::FailedPrecondition("not connected");
  std::string bytes;
  wire::AppendEventBatch(&bytes, batch);
  return SendAll(bytes);
}

core::Status IngressClient::SendHealthProbe() {
  if (fd_ < 0) return core::Status::FailedPrecondition("not connected");
  std::string bytes;
  wire::AppendHealthProbe(&bytes);
  return SendAll(bytes);
}

core::Status IngressClient::ReadFrame(wire::Frame* frame, int timeout_ms) {
  if (fd_ < 0) return core::Status::FailedPrecondition("not connected");
  if (timeout_ms == -2) timeout_ms = options_.read_timeout_ms;

  while (true) {
    wire::FrameAssembler::Result result = assembler_.Next(frame);
    if (result == wire::FrameAssembler::Result::kFrame) {
      return core::Status::Ok();
    }
    if (result == wire::FrameAssembler::Result::kError) {
      return core::Status::DataLoss(std::string("wire decode error: ") +
                                    wire::ToString(assembler_.error()));
    }

    // Need more bytes. `poll` owns the timing so this file stays free of
    // clock calls; each wait gets the full budget, which bounds the total
    // only loosely but is plenty for loopback tests and tools.
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return core::Status::IoError(std::string("poll: ") +
                                   std::strerror(errno));
    }
    if (ready == 0) {
      return core::Status::NotFound("no frame within the wait budget");
    }

    char buffer[65536];
    ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      assembler_.Append(std::string_view(buffer, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) return core::Status::IoError("connection closed by server");
    return core::Status::IoError(std::string("recv: ") + std::strerror(errno));
  }
}

void IngressClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

core::Status IngressClient::SendAll(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return core::Status::IoError(std::string("send: ") + std::strerror(errno));
  }
  return core::Status::Ok();
}

}  // namespace streamad::net
