#ifndef STREAMAD_NET_INGRESS_SERVER_H_
#define STREAMAD_NET_INGRESS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/status.h"
#include "src/net/wire.h"

namespace streamad::obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace streamad::obs

namespace streamad::net {

/// The fleet's data-plane front door: a poll-based event-loop TCP listener
/// speaking the `wire` frame protocol. One thread multiplexes every
/// connection (non-blocking accept + per-connection read/write buffers),
/// so a slow or hostile client can stall only its own connection, never
/// the loop — and a peer that submits events without ever reading its
/// replies is disconnected once its write buffer crosses
/// `Options::max_outbuf_bytes`, so it cannot exhaust server memory
/// either.
///
/// Like `HttpServer`, this class knows nothing about the fleet: the
/// application (src/serve/ingress_service.h) plugs in through `Hooks`.
/// The server handles the protocol itself — HELLO/HELLO_ACK negotiation,
/// malformed-frame NACKs, connection lifecycle — and delegates only the
/// application frames:
///
///  - an EVENT_BATCH is handed to `on_event_batch`, whose returned bytes
///    (typically a NACK frame for rejected events, already encoded) are
///    queued on that connection;
///  - score results are produced asynchronously by fleet shard workers;
///    they call `FlagPending(connection)` (thread-safe) and the loop then
///    asks `on_drain` for the encoded frames to flush;
///  - HEALTH_PROBE frames are answered from `on_health`.
class IngressServer {
 public:
  using ConnectionId = std::uint64_t;

  struct Hooks {
    /// Handles one decoded EVENT_BATCH; returns already-encoded frames to
    /// queue on the connection (empty = nothing to send synchronously).
    std::function<std::string(ConnectionId, const wire::EventBatchFrame&)>
        on_event_batch;
    /// Point-in-time health summary for HEALTH_PROBE replies.
    std::function<wire::HealthFrame()> on_health;
    /// Returns encoded frames queued for `id` since the last drain (the
    /// loop calls this after `FlagPending(id)`).
    std::function<std::string(ConnectionId)> on_drain;
    /// The connection is gone (peer closed, error, or server stop); any
    /// routing state for it should be dropped.
    std::function<void(ConnectionId)> on_disconnect;
  };

  struct Options {
    /// Advertised in HELLO_ACK.
    std::string server_name = "streamad-ingress";
    /// Server feature bits; the ack carries client AND server.
    std::uint64_t features = 0;
    /// Per-connection cap on unflushed output bytes. Crossing it means
    /// the peer is not reading its replies; the connection is closed
    /// (counted as `streamad_ingress_overflow_disconnects_total`) rather
    /// than letting its buffer grow without bound. Must comfortably
    /// exceed one maximum frame so any single legal reply fits.
    std::size_t max_outbuf_bytes = 64u << 20;
  };

  IngressServer();
  explicit IngressServer(Options options);
  ~IngressServer();

  IngressServer(const IngressServer&) = delete;
  IngressServer& operator=(const IngressServer&) = delete;

  /// Must be called before `Start`.
  void set_hooks(Hooks hooks);

  /// Registers the ingress instrument family on `registry` (counters for
  /// connections/frames/bytes/NACKs/decode errors, frame-size
  /// histograms). Call before `Start`; pass null for a metrics-free
  /// server.
  void AttachMetrics(obs::MetricsRegistry* registry);

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the event loop.
  core::Status Start(std::uint16_t port);

  /// Closes the listener and every connection, then joins the loop.
  /// Idempotent.
  void Stop();

  /// Port actually bound (valid after a successful `Start`).
  std::uint16_t port() const { return port_; }

  /// Thread-safe: marks `id` as having application frames ready (the
  /// loop will call `on_drain(id)`) and wakes the loop. Unknown or
  /// already-closed ids are ignored — results for a vanished connection
  /// are simply discarded.
  void FlagPending(ConnectionId id);

  /// Live connection count / lifetime accept count (relaxed reads).
  std::size_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_total() const {
    return connections_total_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    ConnectionId id = 0;
    int fd = -1;
    wire::FrameAssembler assembler;
    std::string outbuf;
    std::size_t out_sent = 0;  // prefix of outbuf already written
    bool hello_done = false;
    /// Flush the outbuf, then close (protocol errors end the stream but
    /// the diagnostic NACK should still arrive).
    bool close_after_flush = false;
    /// Unflushed outbuf crossed Options::max_outbuf_bytes; the loop
    /// closes the connection at the next safe point (there is no use
    /// flushing first — the peer is not reading).
    bool overflowed = false;
  };

  void Loop();
  void AcceptNew();
  /// Reads everything available; decodes and handles complete frames.
  void HandleReadable(Connection* conn);
  /// Writes as much of outbuf as the socket accepts.
  void HandleWritable(Connection* conn);
  void HandleFrame(Connection* conn, const wire::Frame& frame);
  /// Queues a protocol-level NACK and condemns the connection.
  void FailConnection(Connection* conn, wire::NackCode code,
                      const std::string& detail);
  void QueueBytes(Connection* conn, const std::string& bytes);
  /// Closes (and counts) a connection whose outbuf overflowed. Returns
  /// true when `conn` was closed and must not be touched again.
  bool CloseIfOverflowed(Connection* conn);
  void CloseConnection(Connection* conn);
  void DrainPendingFlags();
  void WakeLoop();

  Options options_;
  Hooks hooks_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::thread loop_;
  std::atomic<bool> stop_requested_{false};

  /// Loop-thread state: fd -> connection, plus the reverse index `on_drain`
  /// flag delivery needs. Only `Loop` touches either.
  std::unordered_map<int, Connection> connections_;
  std::unordered_map<ConnectionId, int> id_to_fd_;
  ConnectionId next_id_ = 1;

  /// Cross-thread pending-drain flags (shard workers -> loop).
  std::mutex pending_mutex_;
  std::unordered_set<ConnectionId> pending_;  // guarded by pending_mutex_

  std::atomic<std::size_t> active_connections_{0};
  std::atomic<std::uint64_t> connections_total_{0};

  obs::Counter* connections_counter_ = nullptr;
  obs::Gauge* active_gauge_ = nullptr;
  obs::Counter* frames_in_counter_ = nullptr;
  obs::Counter* frames_out_counter_ = nullptr;
  obs::Counter* bytes_in_counter_ = nullptr;
  obs::Counter* bytes_out_counter_ = nullptr;
  obs::Counter* decode_errors_counter_ = nullptr;
  obs::Counter* nacks_counter_ = nullptr;
  obs::Counter* overflow_disconnects_counter_ = nullptr;
  obs::Histogram* frame_in_bytes_ = nullptr;
  obs::Histogram* frame_out_bytes_ = nullptr;
};

}  // namespace streamad::net

#endif  // STREAMAD_NET_INGRESS_SERVER_H_
