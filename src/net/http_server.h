#ifndef STREAMAD_NET_HTTP_SERVER_H_
#define STREAMAD_NET_HTTP_SERVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/status.h"

namespace streamad::net {

/// One parsed scrape request. Only what the live plane needs: the method,
/// the path with any `?query` split off, and the raw query string.
struct HttpRequest {
  std::string method;
  std::string path;
  std::string query;
};

/// The handler's reply. `status` is the HTTP status code; the server adds
/// the status line, `Content-Type`, `Content-Length` and
/// `Connection: close` headers around `body`.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Minimal blocking-accept HTTP/1.0 server for the fleet's live
/// observability plane (`/metrics`, `/healthz`, `/sessions`).
///
/// Design constraints, in order: zero third-party dependencies, zero
/// interference with the serving hot path, and simple enough to reason
/// about under `Stop`. One listener thread accepts loopback connections
/// and serves them serially — a Prometheus scraper polls every few
/// seconds, so concurrency buys nothing here. Handlers run on the
/// listener thread and must be thread-safe against the fleet they read.
///
/// This is an operator endpoint, not an internet-facing service: it binds
/// 127.0.0.1 only, caps requests at 8 KiB, and speaks just enough
/// HTTP/1.0 (GET + exact- and prefix-path routing, `?query` split off)
/// for curl and Prometheus.
///
/// Malformed traffic is answered, not dropped: oversized or truncated
/// requests and garbage request lines get a diagnostic 400, non-GET
/// methods a 405 with an `Allow` header. Only a connection that sends
/// nothing at all (a port scan or liveness probe) is closed silently.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-match `path` (e.g. "/metrics").
  /// Must be called before `Start`; the routing table is immutable while
  /// the listener runs.
  void Handle(const std::string& path, Handler handler);

  /// Registers `handler` for every path starting with `prefix` (which
  /// must start and end with '/', e.g. "/sessions/"). Exact-match routes
  /// win over prefixes; among matching prefixes the longest wins, so
  /// "/sessions/live/" can shadow "/sessions/". The request's `path`
  /// keeps the full target — the handler strips the prefix itself. Must
  /// be called before `Start`.
  void HandlePrefix(const std::string& prefix, Handler handler);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, readable via
  /// `port()` afterwards) and starts the listener thread.
  core::Status Start(std::uint16_t port);

  /// Shuts the listening socket down and joins the listener. Idempotent;
  /// also called by the destructor.
  void Stop();

  /// The bound port; 0 before a successful `Start`.
  std::uint16_t port() const { return port_; }

 private:
  void ListenLoop();
  void ServeConnection(int client_fd);

  const Handler* Route(const std::string& path) const;

  std::unordered_map<std::string, Handler> handlers_;
  std::vector<std::pair<std::string, Handler>> prefix_handlers_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread listener_;
  bool started_ = false;
};

}  // namespace streamad::net

#endif  // STREAMAD_NET_HTTP_SERVER_H_
