#ifndef STREAMAD_NET_WIRE_H_
#define STREAMAD_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace streamad::net::wire {

/// The ingress wire protocol: little-endian, length-prefixed binary frames
/// over a byte stream (TCP). Every frame is
///
///   u32 magic ("SAD1") | u8 version | u8 type | u32 payload_len | payload
///
/// with the payload encoded by `io::BinaryWriter` primitives (the same
/// flat encoding the checkpoint archives use). This header is socket-free
/// on purpose: encode/decode are pure functions over byte buffers, so the
/// codec is unit-testable at arbitrary chunk boundaries and shared by the
/// event-loop server and the blocking client. The grammar is documented in
/// docs/ARCHITECTURE.md §11.
///
/// Integers are copied with memcpy in host byte order; a static_assert in
/// wire.cc refuses to build on big-endian targets, so wherever this code
/// compiles the on-wire bytes really are little-endian and cross-machine
/// interop holds. Porting to a big-endian host requires byte-swapping the
/// codec (header fields here plus the BinaryWriter/Reader primitives).
inline constexpr std::uint32_t kWireMagic = 0x31444153;  // "SAD1" LE
inline constexpr std::uint8_t kWireVersion = 1;

/// Hard cap on a single frame's payload. Large enough for ~64k events of
/// a wide stream, small enough that a garbage length prefix cannot make a
/// connection buffer gigabytes.
inline constexpr std::uint32_t kMaxPayloadBytes = 16u << 20;

/// Fixed number of bytes before the payload.
inline constexpr std::size_t kFrameHeaderBytes = 10;

enum class FrameType : std::uint8_t {
  kHello = 1,       // client -> server, first frame on a connection
  kHelloAck = 2,    // server -> client, accepts the session
  kEventBatch = 3,  // client -> server, (stream_id, values) tuples
  kScoreBatch = 4,  // server -> client, one entry per scored event
  kNack = 5,        // server -> client, per-event rejections
  kHealthProbe = 6, // client -> server, empty payload
  kHealth = 7,      // server -> client, fleet health summary
};

/// Why an event (or a whole frame) was rejected. The first three mirror
/// `serve::DetectorFleet::Admission` so a client can tell backpressure
/// (`kThrottled`: queued anyway, slow down) from loss (`kDropped`: resend
/// later) from misaddressing (`kUnknownStream`). The rest are protocol
/// errors that also close the connection.
enum class NackCode : std::uint8_t {
  kThrottled = 1,
  kDropped = 2,
  kUnknownStream = 3,
  kShuttingDown = 4,
  kMalformed = 5,
  kUnsupportedVersion = 6,
  kProtocolViolation = 7,  // e.g. events before HELLO completed
};

const char* ToString(FrameType type);
const char* ToString(NackCode code);

// ------------------------------------------------------------ payloads --

struct HelloFrame {
  std::uint32_t proto_version = kWireVersion;
  std::uint64_t features = 0;  // bitset, reserved; echoed ANDed in the ack
  std::string client;          // free-form client identifier
};

struct HelloAckFrame {
  std::uint32_t proto_version = kWireVersion;
  std::uint64_t features = 0;  // negotiated = client AND server
  std::string server;
};

struct WireEvent {
  std::string stream_id;
  std::vector<double> values;
};

struct EventBatchFrame {
  std::uint64_t batch_id = 0;  // echoed in NACKs so clients can correlate
  std::vector<WireEvent> events;
};

struct ScoreEntry {
  std::string stream_id;
  std::int64_t t = 0;
  std::uint8_t flags = 0;  // bit 0: scored, bit 1: finetuned
  double nonconformity = 0.0;
  double anomaly_score = 0.0;
};

inline constexpr std::uint8_t kScoreFlagScored = 1;
inline constexpr std::uint8_t kScoreFlagFinetuned = 2;

struct ScoreBatchFrame {
  std::vector<ScoreEntry> entries;
};

struct NackEntry {
  std::uint32_t index = 0;  // position within the offending EVENT_BATCH
  NackCode code = NackCode::kMalformed;
  std::string detail;
};

struct NackFrame {
  std::uint64_t batch_id = 0;
  std::vector<NackEntry> entries;
};

struct HealthProbeFrame {};

struct HealthFrame {
  std::uint8_t healthy = 0;
  std::uint64_t sessions = 0;
  std::uint64_t resident = 0;
  std::uint64_t processed = 0;
  std::uint64_t throttled = 0;
  std::uint64_t dropped = 0;
};

struct Frame {
  FrameType type = FrameType::kHello;
  std::variant<HelloFrame, HelloAckFrame, EventBatchFrame, ScoreBatchFrame,
               NackFrame, HealthProbeFrame, HealthFrame>
      payload;
};

// -------------------------------------------------------------- encode --

/// Append one complete frame (header + payload) to `*out`. Appending to a
/// string instead of returning one lets callers coalesce several frames
/// into a single socket write.
void AppendHello(std::string* out, const HelloFrame& frame);
void AppendHelloAck(std::string* out, const HelloAckFrame& frame);
void AppendEventBatch(std::string* out, const EventBatchFrame& frame);
void AppendScoreBatch(std::string* out, const ScoreBatchFrame& frame);
void AppendNack(std::string* out, const NackFrame& frame);
void AppendHealthProbe(std::string* out);
void AppendHealth(std::string* out, const HealthFrame& frame);

/// Raw escape hatch for tests: header with arbitrary type/version/magic
/// around an arbitrary payload.
void AppendFrameRaw(std::string* out, std::uint32_t magic,
                    std::uint8_t version, std::uint8_t type,
                    std::string_view payload);

// -------------------------------------------------------------- decode --

/// Typed decode failures. Any error is terminal for the byte stream (a
/// framing error means resynchronisation is impossible), so the assembler
/// goes sticky and the connection must be dropped.
enum class WireError : std::uint8_t {
  kNone = 0,
  kBadMagic,
  kBadVersion,
  kOversized,       // payload_len exceeds kMaxPayloadBytes
  kUnknownType,
  kTruncatedPayload,  // payload shorter/longer than its fields claim
};

const char* ToString(WireError error);

/// Incremental frame reassembly over an arbitrarily chunked byte stream.
/// Feed bytes as they arrive (`Append`), then drain complete frames with
/// `Next` until it reports `kNeedMore`.
class FrameAssembler {
 public:
  enum class Result { kFrame, kNeedMore, kError };

  /// Appends raw bytes from the transport.
  void Append(std::string_view bytes);

  /// Extracts the next complete frame into `*frame`. `kError` is sticky:
  /// once the stream is broken every later call reports the same error.
  Result Next(Frame* frame);

  WireError error() const { return error_; }

  /// Bytes buffered but not yet consumed by `Next`.
  std::size_t pending_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already handed out
  WireError error_ = WireError::kNone;
};

}  // namespace streamad::net::wire

#endif  // STREAMAD_NET_WIRE_H_
