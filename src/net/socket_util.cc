#include "src/net/socket_util.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "src/common/check.h"

namespace streamad::net {

core::Status BindLoopbackListener(std::uint16_t port, int backlog,
                                  ListenerSocket* out) {
  STREAMAD_CHECK(out != nullptr);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return core::Status::IoError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string message = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return core::Status::IoError(message);
  }
  if (::listen(fd, backlog) < 0) {
    const std::string message =
        std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return core::Status::IoError(message);
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    const std::string message =
        std::string("getsockname: ") + std::strerror(errno);
    ::close(fd);
    return core::Status::IoError(message);
  }
  out->fd = fd;
  out->port = ntohs(bound.sin_port);
  return core::Status::Ok();
}

}  // namespace streamad::net
