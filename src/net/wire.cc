#include "src/net/wire.h"

#include <bit>
#include <cstring>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/io/binary_io.h"

namespace streamad::net::wire {

// The protocol is specified little-endian but encoded via memcpy of
// host-order integers (as are the BinaryWriter payload primitives), so a
// big-endian build would silently produce an incompatible byte stream.
// Refuse to compile instead; port the codec with explicit byte swaps if a
// big-endian target ever matters.
static_assert(std::endian::native == std::endian::little,
              "wire codec assumes a little-endian host");

namespace {

/// Encodes `frame`'s payload through a BinaryWriter into a string.
template <typename EncodeFn>
std::string EncodePayload(EncodeFn&& encode) {
  std::ostringstream out;
  io::BinaryWriter writer(&out);
  encode(&writer);
  STREAMAD_CHECK_MSG(writer.ok(), "in-memory payload encode cannot fail");
  return std::move(out).str();
}

void AppendFrame(std::string* out, FrameType type, std::string_view payload) {
  AppendFrameRaw(out, kWireMagic, kWireVersion,
                 static_cast<std::uint8_t>(type), payload);
}

bool DecodeHello(io::BinaryReader* r, HelloFrame* frame) {
  return r->ReadU32(&frame->proto_version) && r->ReadU64(&frame->features) &&
         r->ReadString(&frame->client);
}

bool DecodeHelloAck(io::BinaryReader* r, HelloAckFrame* frame) {
  return r->ReadU32(&frame->proto_version) && r->ReadU64(&frame->features) &&
         r->ReadString(&frame->server);
}

bool DecodeEventBatch(io::BinaryReader* r, EventBatchFrame* frame) {
  std::uint32_t count = 0;
  if (!r->ReadU64(&frame->batch_id) || !r->ReadU32(&count)) return false;
  frame->events.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    WireEvent event;
    if (!r->ReadString(&event.stream_id) ||
        !r->ReadDoubleVec(&event.values)) {
      return false;
    }
    frame->events.push_back(std::move(event));
  }
  return true;
}

bool DecodeScoreBatch(io::BinaryReader* r, ScoreBatchFrame* frame) {
  std::uint32_t count = 0;
  if (!r->ReadU32(&count)) return false;
  frame->entries.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    ScoreEntry entry;
    if (!r->ReadString(&entry.stream_id) || !r->ReadI64(&entry.t) ||
        !r->ReadU8(&entry.flags) || !r->ReadDouble(&entry.nonconformity) ||
        !r->ReadDouble(&entry.anomaly_score)) {
      return false;
    }
    frame->entries.push_back(std::move(entry));
  }
  return true;
}

bool DecodeNack(io::BinaryReader* r, NackFrame* frame) {
  std::uint32_t count = 0;
  if (!r->ReadU64(&frame->batch_id) || !r->ReadU32(&count)) return false;
  frame->entries.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    NackEntry entry;
    std::uint8_t code = 0;
    if (!r->ReadU32(&entry.index) || !r->ReadU8(&code) ||
        !r->ReadString(&entry.detail)) {
      return false;
    }
    if (code < static_cast<std::uint8_t>(NackCode::kThrottled) ||
        code > static_cast<std::uint8_t>(NackCode::kProtocolViolation)) {
      return false;
    }
    entry.code = static_cast<NackCode>(code);
    frame->entries.push_back(std::move(entry));
  }
  return true;
}

bool DecodeHealth(io::BinaryReader* r, HealthFrame* frame) {
  return r->ReadU8(&frame->healthy) && r->ReadU64(&frame->sessions) &&
         r->ReadU64(&frame->resident) && r->ReadU64(&frame->processed) &&
         r->ReadU64(&frame->throttled) && r->ReadU64(&frame->dropped);
}

/// Decodes a complete payload into `frame->payload`. False when the
/// payload is shorter than its fields claim, carries trailing bytes, or
/// fails any field-level validation — all reported as kTruncatedPayload
/// (the framing is fine; the contents are not).
bool DecodePayload(FrameType type, std::string_view payload, Frame* frame) {
  std::istringstream in{std::string(payload)};
  io::BinaryReader reader(&in);
  bool ok = false;
  switch (type) {
    case FrameType::kHello: {
      HelloFrame f;
      ok = DecodeHello(&reader, &f);
      frame->payload = std::move(f);
      break;
    }
    case FrameType::kHelloAck: {
      HelloAckFrame f;
      ok = DecodeHelloAck(&reader, &f);
      frame->payload = std::move(f);
      break;
    }
    case FrameType::kEventBatch: {
      EventBatchFrame f;
      ok = DecodeEventBatch(&reader, &f);
      frame->payload = std::move(f);
      break;
    }
    case FrameType::kScoreBatch: {
      ScoreBatchFrame f;
      ok = DecodeScoreBatch(&reader, &f);
      frame->payload = std::move(f);
      break;
    }
    case FrameType::kNack: {
      NackFrame f;
      ok = DecodeNack(&reader, &f);
      frame->payload = std::move(f);
      break;
    }
    case FrameType::kHealthProbe: {
      frame->payload = HealthProbeFrame{};
      ok = true;
      break;
    }
    case FrameType::kHealth: {
      HealthFrame f;
      ok = DecodeHealth(&reader, &f);
      frame->payload = std::move(f);
      break;
    }
  }
  if (!ok || !reader.ok()) return false;
  // Every payload byte must be accounted for: trailing garbage means the
  // peer and we disagree about the grammar.
  const std::streampos pos = in.tellg();
  return pos >= 0 && static_cast<std::size_t>(pos) == payload.size();
}

}  // namespace

const char* ToString(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kHelloAck: return "HELLO_ACK";
    case FrameType::kEventBatch: return "EVENT_BATCH";
    case FrameType::kScoreBatch: return "SCORE_BATCH";
    case FrameType::kNack: return "NACK";
    case FrameType::kHealthProbe: return "HEALTH_PROBE";
    case FrameType::kHealth: return "HEALTH";
  }
  return "?";
}

const char* ToString(NackCode code) {
  switch (code) {
    case NackCode::kThrottled: return "THROTTLED";
    case NackCode::kDropped: return "DROPPED";
    case NackCode::kUnknownStream: return "UNKNOWN_STREAM";
    case NackCode::kShuttingDown: return "SHUTTING_DOWN";
    case NackCode::kMalformed: return "MALFORMED";
    case NackCode::kUnsupportedVersion: return "UNSUPPORTED_VERSION";
    case NackCode::kProtocolViolation: return "PROTOCOL_VIOLATION";
  }
  return "?";
}

const char* ToString(WireError error) {
  switch (error) {
    case WireError::kNone: return "none";
    case WireError::kBadMagic: return "bad magic";
    case WireError::kBadVersion: return "unsupported wire version";
    case WireError::kOversized: return "payload exceeds cap";
    case WireError::kUnknownType: return "unknown frame type";
    case WireError::kTruncatedPayload: return "malformed payload";
  }
  return "?";
}

void AppendFrameRaw(std::string* out, std::uint32_t magic,
                    std::uint8_t version, std::uint8_t type,
                    std::string_view payload) {
  STREAMAD_CHECK(out != nullptr);
  STREAMAD_CHECK_MSG(payload.size() <= kMaxPayloadBytes,
                     "frame payload exceeds kMaxPayloadBytes");
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(payload.size());
  char header[kFrameHeaderBytes];
  std::memcpy(header, &magic, 4);
  header[4] = static_cast<char>(version);
  header[5] = static_cast<char>(type);
  std::memcpy(header + 6, &payload_len, 4);
  out->append(header, sizeof(header));
  out->append(payload.data(), payload.size());
}

void AppendHello(std::string* out, const HelloFrame& frame) {
  AppendFrame(out, FrameType::kHello, EncodePayload([&](io::BinaryWriter* w) {
                w->WriteU32(frame.proto_version);
                w->WriteU64(frame.features);
                w->WriteString(frame.client);
              }));
}

void AppendHelloAck(std::string* out, const HelloAckFrame& frame) {
  AppendFrame(out, FrameType::kHelloAck,
              EncodePayload([&](io::BinaryWriter* w) {
                w->WriteU32(frame.proto_version);
                w->WriteU64(frame.features);
                w->WriteString(frame.server);
              }));
}

void AppendEventBatch(std::string* out, const EventBatchFrame& frame) {
  AppendFrame(out, FrameType::kEventBatch,
              EncodePayload([&](io::BinaryWriter* w) {
                w->WriteU64(frame.batch_id);
                w->WriteU32(static_cast<std::uint32_t>(frame.events.size()));
                for (const WireEvent& event : frame.events) {
                  w->WriteString(event.stream_id);
                  w->WriteDoubleVec(event.values);
                }
              }));
}

void AppendScoreBatch(std::string* out, const ScoreBatchFrame& frame) {
  AppendFrame(out, FrameType::kScoreBatch,
              EncodePayload([&](io::BinaryWriter* w) {
                w->WriteU32(static_cast<std::uint32_t>(frame.entries.size()));
                for (const ScoreEntry& entry : frame.entries) {
                  w->WriteString(entry.stream_id);
                  w->WriteI64(entry.t);
                  w->WriteU8(entry.flags);
                  w->WriteDouble(entry.nonconformity);
                  w->WriteDouble(entry.anomaly_score);
                }
              }));
}

void AppendNack(std::string* out, const NackFrame& frame) {
  AppendFrame(out, FrameType::kNack, EncodePayload([&](io::BinaryWriter* w) {
                w->WriteU64(frame.batch_id);
                w->WriteU32(static_cast<std::uint32_t>(frame.entries.size()));
                for (const NackEntry& entry : frame.entries) {
                  w->WriteU32(entry.index);
                  w->WriteU8(static_cast<std::uint8_t>(entry.code));
                  w->WriteString(entry.detail);
                }
              }));
}

void AppendHealthProbe(std::string* out) {
  AppendFrame(out, FrameType::kHealthProbe, std::string_view());
}

void AppendHealth(std::string* out, const HealthFrame& frame) {
  AppendFrame(out, FrameType::kHealth, EncodePayload([&](io::BinaryWriter* w) {
                w->WriteU8(frame.healthy);
                w->WriteU64(frame.sessions);
                w->WriteU64(frame.resident);
                w->WriteU64(frame.processed);
                w->WriteU64(frame.throttled);
                w->WriteU64(frame.dropped);
              }));
}

void FrameAssembler::Append(std::string_view bytes) {
  if (error_ != WireError::kNone) return;  // stream already condemned
  // Shift out the consumed prefix before growing, so long-lived
  // connections do not accumulate every byte they ever received.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

FrameAssembler::Result FrameAssembler::Next(Frame* frame) {
  STREAMAD_CHECK(frame != nullptr);
  if (error_ != WireError::kNone) return Result::kError;
  if (buffer_.size() - consumed_ < kFrameHeaderBytes) {
    return Result::kNeedMore;
  }
  const char* header = buffer_.data() + consumed_;
  std::uint32_t magic = 0;
  std::uint32_t payload_len = 0;
  std::memcpy(&magic, header, 4);
  const std::uint8_t version = static_cast<std::uint8_t>(header[4]);
  const std::uint8_t type = static_cast<std::uint8_t>(header[5]);
  std::memcpy(&payload_len, header + 6, 4);

  if (magic != kWireMagic) {
    error_ = WireError::kBadMagic;
    return Result::kError;
  }
  if (version != kWireVersion) {
    error_ = WireError::kBadVersion;
    return Result::kError;
  }
  if (payload_len > kMaxPayloadBytes) {
    error_ = WireError::kOversized;
    return Result::kError;
  }
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kHealth)) {
    error_ = WireError::kUnknownType;
    return Result::kError;
  }
  if (buffer_.size() - consumed_ < kFrameHeaderBytes + payload_len) {
    return Result::kNeedMore;
  }

  const std::string_view payload(buffer_.data() + consumed_ +
                                     kFrameHeaderBytes,
                                 payload_len);
  frame->type = static_cast<FrameType>(type);
  if (!DecodePayload(frame->type, payload, frame)) {
    error_ = WireError::kTruncatedPayload;
    return Result::kError;
  }
  consumed_ += kFrameHeaderBytes + payload_len;
  return Result::kFrame;
}

}  // namespace streamad::net::wire
