#ifndef STREAMAD_NET_SOCKET_UTIL_H_
#define STREAMAD_NET_SOCKET_UTIL_H_

#include <cstdint>

#include "src/core/status.h"

namespace streamad::net {

/// A freshly bound loopback listener: the file descriptor plus the port it
/// actually landed on (equal to the requested port, or kernel-picked when
/// the request was 0).
struct ListenerSocket {
  int fd = -1;
  std::uint16_t port = 0;
};

/// Creates a TCP listener bound to 127.0.0.1:`port` (`port == 0` asks the
/// kernel for a free ephemeral port — the race-free pick-a-free-port idiom
/// the tests rely on; never retry-loop over hardcoded ports). The socket
/// has SO_REUSEADDR set and is already listening with `backlog`. On
/// success the caller owns `out->fd` and must `::close` it; on error the
/// descriptor is closed here and `out` is untouched.
///
/// Shared by `HttpServer` (operator plane) and `IngressServer` (data
/// plane) so both speak the same bind/readback sequence.
core::Status BindLoopbackListener(std::uint16_t port, int backlog,
                                  ListenerSocket* out);

}  // namespace streamad::net

#endif  // STREAMAD_NET_SOCKET_UTIL_H_
