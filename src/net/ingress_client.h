#ifndef STREAMAD_NET_INGRESS_CLIENT_H_
#define STREAMAD_NET_INGRESS_CLIENT_H_

#include <cstdint>
#include <string>

#include "src/core/status.h"
#include "src/net/wire.h"

namespace streamad::net {

/// Blocking counterpart to `IngressServer`: one loopback TCP connection
/// speaking the `wire` protocol. `Connect` performs the HELLO/HELLO_ACK
/// exchange; afterwards the caller sends EVENT_BATCH / HEALTH_PROBE frames
/// and reads whatever the server pushes back (SCORE_BATCH frames arrive
/// asynchronously as shard workers finish, so readers should keep draining
/// with `ReadFrame(..., 0)` between sends).
///
/// Used by `examples/remote_serving.cc`, `bench/ingress_bench.cc`, and the
/// ingress tests; deliberately simple — one outstanding connection, no
/// internal threads.
class IngressClient {
 public:
  struct Options {
    std::string client_name = "streamad-client";
    std::uint64_t features = 0;
    /// Default wait budget for `ReadFrame` (milliseconds); -1 = forever.
    int read_timeout_ms = 5000;
  };

  IngressClient();
  explicit IngressClient(Options options);
  ~IngressClient();

  IngressClient(const IngressClient&) = delete;
  IngressClient& operator=(const IngressClient&) = delete;

  /// Connects to 127.0.0.1:`port` and completes the HELLO handshake. A
  /// version-rejecting server answers with a NACK, surfaced here as
  /// `kFailedPrecondition` carrying the server's detail text.
  core::Status Connect(std::uint16_t port);

  /// True between a successful `Connect` and `Close` (or a fatal error).
  bool connected() const { return fd_ >= 0; }

  /// The ack received during `Connect` (server name, negotiated features).
  const wire::HelloAckFrame& server_ack() const { return ack_; }

  core::Status SendEventBatch(const wire::EventBatchFrame& batch);
  core::Status SendHealthProbe();

  /// Blocks until one complete frame arrives (`kOk`), the wait budget
  /// lapses (`kNotFound`, connection still usable), the peer closes or a
  /// socket error occurs (`kIoError`), or the byte stream is malformed
  /// (`kDataLoss`, terminal). `timeout_ms` of -2 uses the option default;
  /// 0 polls without waiting; -1 waits forever.
  core::Status ReadFrame(wire::Frame* frame, int timeout_ms = -2);

  void Close();

 private:
  core::Status SendAll(const std::string& bytes);

  Options options_;
  int fd_ = -1;
  wire::FrameAssembler assembler_;
  wire::HelloAckFrame ack_;
};

}  // namespace streamad::net

#endif  // STREAMAD_NET_INGRESS_CLIENT_H_
