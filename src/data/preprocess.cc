#include "src/data/preprocess.h"

#include <cmath>
#include <vector>

#include "src/common/check.h"

namespace streamad::data {

void StandardizePerChannel(LabeledSeries* series,
                           std::size_t calibration_steps) {
  STREAMAD_CHECK(series != nullptr);
  STREAMAD_CHECK_MSG(calibration_steps >= 2, "calibration too short");
  STREAMAD_CHECK_MSG(calibration_steps <= series->length(),
                     "calibration longer than series");
  const std::size_t channels = series->channels();
  std::vector<double> mean(channels, 0.0);
  std::vector<double> stddev(channels, 0.0);
  for (std::size_t t = 0; t < calibration_steps; ++t) {
    for (std::size_t c = 0; c < channels; ++c) {
      mean[c] += series->values(t, c);
    }
  }
  for (double& m : mean) m /= static_cast<double>(calibration_steps);
  for (std::size_t t = 0; t < calibration_steps; ++t) {
    for (std::size_t c = 0; c < channels; ++c) {
      const double d = series->values(t, c) - mean[c];
      stddev[c] += d * d;
    }
  }
  for (double& s : stddev) {
    s = std::sqrt(s / static_cast<double>(calibration_steps));
    if (s < 1e-9) s = 1.0;  // constant channel: centre only
  }
  for (std::size_t t = 0; t < series->length(); ++t) {
    for (std::size_t c = 0; c < channels; ++c) {
      series->values(t, c) = (series->values(t, c) - mean[c]) / stddev[c];
    }
  }
}

void StandardizePerChannel(Corpus* corpus, std::size_t calibration_steps) {
  STREAMAD_CHECK(corpus != nullptr);
  for (LabeledSeries& series : corpus->series) {
    StandardizePerChannel(&series, calibration_steps);
  }
}

}  // namespace streamad::data
