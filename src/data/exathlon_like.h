#ifndef STREAMAD_DATA_EXATHLON_LIKE_H_
#define STREAMAD_DATA_EXATHLON_LIKE_H_

#include "src/data/generator_config.h"
#include "src/data/series.h"

namespace streamad::data {

/// Synthetic stand-in for the **Exathlon** corpus (Jacob et al.): 16
/// Spark-cluster-style metric channels — periodic CPU gauges, slowly
/// ramping memory with GC resets, saw-tooth network counters and
/// piecewise-constant task gauges.
///
/// Anomalies are the Exathlon event families: CPU bursts, memory-leak
/// ramps and stalled counters, each hitting the matching channel group.
/// Concept drift is an abrupt workload change (level and period shift
/// across the gauge channels), which the detectors must re-learn rather
/// than flag.
Corpus MakeExathlonLike(const GeneratorConfig& config = GeneratorConfig());

}  // namespace streamad::data

#endif  // STREAMAD_DATA_EXATHLON_LIKE_H_
