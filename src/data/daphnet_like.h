#ifndef STREAMAD_DATA_DAPHNET_LIKE_H_
#define STREAMAD_DATA_DAPHNET_LIKE_H_

#include "src/data/generator_config.h"
#include "src/data/series.h"

namespace streamad::data {

/// Synthetic stand-in for the **Daphnet freezing-of-gait** corpus
/// (Bächlin et al.): 9 accelerometer channels (3 sensors x 3 axes) of
/// quasi-periodic gait oscillation with per-axis amplitude, phase and
/// harmonics plus sensor noise.
///
/// Anomalies are freeze episodes: the gait amplitude collapses while a
/// high-frequency tremor appears on the leg sensors — the signature the
/// real dataset is known for. Concept drift comes as gradual cadence
/// (frequency) and amplitude changes, the walking-speed variation a
/// wearable monitor must absorb without alarming.
Corpus MakeDaphnetLike(const GeneratorConfig& config = GeneratorConfig());

}  // namespace streamad::data

#endif  // STREAMAD_DATA_DAPHNET_LIKE_H_
