#ifndef STREAMAD_DATA_SERIES_H_
#define STREAMAD_DATA_SERIES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/linalg/matrix.h"

namespace streamad::data {

/// A finite multivariate time series with point-wise anomaly labels — the
/// unit of evaluation. `values` is `T x N` (rows = time steps), `labels[t]`
/// is 1 inside a ground-truth anomaly and 0 otherwise.
struct LabeledSeries {
  std::string name;
  linalg::Matrix values;
  std::vector<int> labels;

  std::size_t length() const { return values.rows(); }
  std::size_t channels() const { return values.cols(); }

  /// The stream vector at step `t`.
  core::StreamVector At(std::size_t t) const { return values.Row(t); }

  /// Total number of labelled anomaly steps.
  std::size_t AnomalyPointCount() const;

  /// Checks the container invariants (label length matches, labels are
  /// 0/1). CHECK-fails on violation; generators call this before returning.
  void Validate() const;
};

/// A named collection of labelled series, standing in for one benchmark
/// corpus (Daphnet / Exathlon / SMD).
struct Corpus {
  std::string name;
  std::vector<LabeledSeries> series;
};

}  // namespace streamad::data

#endif  // STREAMAD_DATA_SERIES_H_
