#include "src/data/daphnet_like.h"

#include <cmath>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace streamad::data {

namespace {

constexpr std::size_t kChannels = 9;  // 3 sensors x 3 axes
constexpr double kTwoPi = 6.283185307179586;

struct AxisProfile {
  double amplitude;
  double phase;
  double harmonic2;  // relative weight of the 2nd harmonic
  double noise;
};

LabeledSeries MakeOneSeries(const GeneratorConfig& config,
                            std::uint64_t seed, std::size_t index) {
  Rng rng(seed);
  LabeledSeries series;
  series.name = "daphnet-like-" + std::to_string(index);
  series.values = linalg::Matrix(config.length, kChannels);
  series.labels.assign(config.length, 0);

  // Per-axis gait profile: hip / thigh / shank sensors carry progressively
  // stronger oscillation; phases decorrelate the axes.
  std::vector<AxisProfile> profile(kChannels);
  for (std::size_t c = 0; c < kChannels; ++c) {
    const double sensor_gain = 0.6 + 0.4 * static_cast<double>(c / 3);
    profile[c].amplitude = sensor_gain * rng.Uniform(0.8, 1.2);
    profile[c].phase = rng.Uniform(0.0, kTwoPi);
    profile[c].harmonic2 = rng.Uniform(0.15, 0.35);
    profile[c].noise = rng.Uniform(0.08, 0.15);
  }

  // Cadence drift schedule: the base gait frequency changes gradually at
  // `num_drifts` points after the normal prefix (concept drift, unlabeled).
  const double base_freq = rng.Uniform(0.045, 0.06);  // cycles per step
  std::vector<std::size_t> drift_starts;
  std::vector<double> drift_freq_scale;
  std::vector<double> drift_amp_scale;
  std::vector<double> drift_level;
  for (std::size_t d = 0; d < config.num_drifts; ++d) {
    const std::size_t lo =
        config.normal_prefix +
        d * (config.length - config.normal_prefix) / (config.num_drifts + 1);
    drift_starts.push_back(lo + static_cast<std::size_t>(rng.UniformInt(
                                    0, (config.length - config.normal_prefix) /
                                           (config.num_drifts + 1) / 2)));
    drift_freq_scale.push_back(rng.Uniform(0.75, 1.35));
    drift_amp_scale.push_back(rng.Uniform(0.8, 1.25));
    // Posture change: a persistent accelerometer offset. This is the drift
    // component that moves the training-set *mean* (what mu/sigma-Change
    // watches); cadence and amplitude changes only reshape the
    // distribution (what KSWIN watches).
    drift_level.push_back((rng.Bernoulli(0.5) ? 1.0 : -1.0) *
                          rng.Uniform(0.9, 1.4));
  }

  // Freeze-of-gait anomaly segments: amplitude collapse + tremor.
  struct Freeze {
    std::size_t start;
    std::size_t length;
  };
  std::vector<Freeze> freezes;
  const std::size_t tail = config.length - config.normal_prefix;
  for (std::size_t a = 0; a < config.num_anomalies; ++a) {
    const std::size_t slot = tail / config.num_anomalies;
    const std::size_t start =
        config.normal_prefix + a * slot +
        static_cast<std::size_t>(rng.UniformInt(slot / 8, slot / 2));
    const std::size_t length =
        static_cast<std::size_t>(rng.UniformInt(40, 120));
    freezes.push_back({start, length});
  }

  double phase_acc = 0.0;  // integrated instantaneous frequency
  double amp_walk = 1.0;   // stochastic stride-to-stride amplitude
  for (std::size_t t = 0; t < config.length; ++t) {
    // Instantaneous frequency / amplitude after the drift schedule,
    // blended in over 400 steps for gradual drift.
    double freq = base_freq;
    double amp_scale = 1.0;
    double level = 0.0;
    for (std::size_t d = 0; d < drift_starts.size(); ++d) {
      if (t < drift_starts[d]) continue;
      const double blend =
          std::min(1.0, static_cast<double>(t - drift_starts[d]) / 400.0);
      freq *= 1.0 + blend * (drift_freq_scale[d] - 1.0);
      amp_scale *= 1.0 + blend * (drift_amp_scale[d] - 1.0);
      level += blend * drift_level[d];
    }
    // Stride-to-stride variability: phase jitter and a mean-reverting
    // amplitude walk. Real gait is not a clean oscillator — this is what
    // keeps a linear AR extrapolation from being a near-perfect forecast.
    phase_acc += freq * (1.0 + rng.Gaussian(0.0, 0.25));
    amp_walk += 0.1 * (1.0 - amp_walk) + rng.Gaussian(0.0, 0.04);
    amp_walk = std::min(1.5, std::max(0.5, amp_walk));

    bool frozen = false;
    for (const Freeze& f : freezes) {
      if (t >= f.start && t < f.start + f.length) {
        frozen = true;
        break;
      }
    }

    for (std::size_t c = 0; c < kChannels; ++c) {
      const AxisProfile& p = profile[c];
      double gait = p.amplitude * amp_scale * amp_walk *
                    (std::sin(kTwoPi * phase_acc + p.phase) +
                     p.harmonic2 * std::sin(2.0 * kTwoPi * phase_acc + p.phase));
      double value;
      if (frozen) {
        // Freeze: oscillation collapses; the shank/thigh sensors (c >= 3)
        // pick up a ~4x-frequency tremor, the classic FoG signature.
        const double tremor =
            c >= 3 ? 0.45 * std::sin(4.0 * kTwoPi * phase_acc + p.phase) : 0.0;
        value = level + 0.15 * gait + tremor + rng.Gaussian(0.0, p.noise);
        series.labels[t] = 1;
      } else {
        value = level + gait + rng.Gaussian(0.0, p.noise);
      }
      series.values(t, c) = value;
    }
  }

  series.Validate();
  STREAMAD_CHECK_MSG(series.AnomalyPointCount() > 0, "no anomalies injected");
  return series;
}

}  // namespace

Corpus MakeDaphnetLike(const GeneratorConfig& config) {
  STREAMAD_CHECK(config.length > config.normal_prefix);
  STREAMAD_CHECK(config.num_anomalies > 0);
  Corpus corpus;
  corpus.name = "Daphnet-like";
  for (std::size_t i = 0; i < config.num_series; ++i) {
    corpus.series.push_back(MakeOneSeries(config, config.seed + i, i));
  }
  return corpus;
}

}  // namespace streamad::data
