#ifndef STREAMAD_DATA_PREPROCESS_H_
#define STREAMAD_DATA_PREPROCESS_H_

#include <cstddef>

#include "src/data/series.h"

namespace streamad::data {

/// Standardises a series per channel using statistics estimated on its
/// first `calibration_steps` steps (z-score; constant channels are only
/// centred). Labels are untouched.
///
/// Streaming anomaly detection pipelines normalise their inputs before
/// the detector sees them — the cosine nonconformity in particular is
/// otherwise dominated by large positive channel levels (the "DC
/// component" makes every pair of windows nearly parallel, compressing
/// the signal of genuine anomalies). Calibrating on the prefix only keeps
/// the transform causal: no statistic leaks from the evaluated suffix.
void StandardizePerChannel(LabeledSeries* series,
                           std::size_t calibration_steps);

/// Convenience: standardises every series of a corpus in place, each on
/// its own `calibration_steps` prefix.
void StandardizePerChannel(Corpus* corpus, std::size_t calibration_steps);

}  // namespace streamad::data

#endif  // STREAMAD_DATA_PREPROCESS_H_
