#include "src/data/smd_like.h"

#include <cmath>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/data/injectors.h"

namespace streamad::data {

namespace {

constexpr double kTwoPi = 6.283185307179586;
constexpr std::size_t kChannels = 38;

enum class ChannelKind { kPeriodic, kBursty, kConstant };

LabeledSeries MakeOneSeries(const GeneratorConfig& config,
                            std::uint64_t seed, std::size_t index) {
  Rng rng(seed);
  LabeledSeries series;
  series.name = "smd-like-" + std::to_string(index);
  series.values = linalg::Matrix(config.length, kChannels);
  series.labels.assign(config.length, 0);

  // Channel mix roughly matching SMD: half periodic gauges, a third bursty
  // counters, the rest near-constant indicators.
  std::vector<ChannelKind> kind(kChannels);
  std::vector<double> period(kChannels);
  std::vector<double> phase(kChannels);
  std::vector<double> level(kChannels);
  std::vector<double> noise(kChannels);
  std::vector<double> burst_prob(kChannels);
  for (std::size_t c = 0; c < kChannels; ++c) {
    const double pick = rng.Uniform();
    kind[c] = pick < 0.5
                  ? ChannelKind::kPeriodic
                  : (pick < 0.85 ? ChannelKind::kBursty
                                 : ChannelKind::kConstant);
    // Periods short relative to the training-set span (~175 steps for the
    // laptop-scale m = 150): the pooled per-channel distribution carries a
    // partial-cycle excess of ~period/span that rotates with the phase, so
    // long periods make every drift detector fire continuously.
    period[c] = rng.Uniform(15.0, 35.0);
    phase[c] = rng.Uniform(0.0, kTwoPi);
    level[c] = rng.Uniform(0.5, 3.0);
    noise[c] = rng.Uniform(0.05, 0.15);
    burst_prob[c] = rng.Uniform(0.01, 0.04);
  }

  for (std::size_t t = 0; t < config.length; ++t) {
    for (std::size_t c = 0; c < kChannels; ++c) {
      double value = level[c] + rng.Gaussian(0.0, noise[c]);
      switch (kind[c]) {
        case ChannelKind::kPeriodic:
          value += 0.4 * std::sin(kTwoPi * static_cast<double>(t) /
                                      period[c] +
                                  phase[c]);
          break;
        case ChannelKind::kBursty:
          if (rng.Bernoulli(burst_prob[c])) {
            value += rng.Uniform(0.3, 1.0);  // normal short burst
          }
          break;
        case ChannelKind::kConstant:
          break;
      }
      series.values(t, c) = value;
    }
  }

  // Concept drift: slow level trend on a channel subset (unlabeled).
  for (std::size_t d = 0; d < config.num_drifts; ++d) {
    const std::size_t start =
        config.normal_prefix +
        (d + 1) * (config.length - config.normal_prefix) /
            (config.num_drifts + 2);
    std::vector<std::size_t> channels;
    for (std::size_t c = 0; c < kChannels; ++c) {
      if (rng.Bernoulli(0.5)) channels.push_back(c);
    }
    if (channels.empty()) channels.push_back(d % kChannels);
    InjectLevelDrift(&series, start, /*transition=*/800, channels,
                     rng.Uniform(1.5, 2.5));
  }

  // Anomalies: correlated incidents across random 5-10 channel subsets.
  const std::size_t tail = config.length - config.normal_prefix;
  for (std::size_t a = 0; a < config.num_anomalies; ++a) {
    const std::size_t slot = tail / config.num_anomalies;
    const std::size_t start =
        config.normal_prefix + a * slot +
        static_cast<std::size_t>(rng.UniformInt(slot / 8, slot / 2));
    const std::size_t length =
        static_cast<std::size_t>(rng.UniformInt(25, 90));
    const std::size_t subset_size =
        static_cast<std::size_t>(rng.UniformInt(5, 10));
    std::vector<std::size_t> channels;
    while (channels.size() < subset_size) {
      const std::size_t c =
          static_cast<std::size_t>(rng.UniformInt(0, kChannels - 1));
      bool seen = false;
      for (std::size_t existing : channels) seen = seen || existing == c;
      if (!seen) channels.push_back(c);
    }
    if (a % 2 == 0) {
      InjectSpike(&series, start, length, channels, 3.5);
    } else {
      InjectVarianceScale(&series, start, length, channels, 4.0);
    }
  }

  series.Validate();
  STREAMAD_CHECK_MSG(series.AnomalyPointCount() > 0, "no anomalies injected");
  return series;
}

}  // namespace

Corpus MakeSmdLike(const GeneratorConfig& config) {
  STREAMAD_CHECK(config.length > config.normal_prefix);
  STREAMAD_CHECK(config.num_anomalies > 0);
  Corpus corpus;
  corpus.name = "SMD-like";
  for (std::size_t i = 0; i < config.num_series; ++i) {
    corpus.series.push_back(MakeOneSeries(config, config.seed + 2000 + i, i));
  }
  return corpus;
}

}  // namespace streamad::data
