#ifndef STREAMAD_DATA_INJECTORS_H_
#define STREAMAD_DATA_INJECTORS_H_

#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/data/series.h"

namespace streamad::data {

/// Anomaly / drift injectors shared by the synthetic corpus generators and
/// the Figure-1 fine-tuning experiment. Anomaly injectors set the labels
/// of the affected steps to 1; drift injectors deliberately do not — drift
/// is a change of the *normal* regime the detector must adapt to, not an
/// anomaly it should flag.

/// Adds an additive spike (constant offset `magnitude * channel_std`) on
/// the listed channels over `[start, start+length)`.
void InjectSpike(LabeledSeries* series, std::size_t start, std::size_t length,
                 const std::vector<std::size_t>& channels, double magnitude);

/// Replaces the listed channels with a frozen (stalled-sensor) value over
/// the segment.
void InjectStall(LabeledSeries* series, std::size_t start, std::size_t length,
                 const std::vector<std::size_t>& channels);

/// Multiplies the deviation from the local level by `factor` (variance
/// burst for factor > 1, amplitude collapse for factor < 1).
void InjectVarianceScale(LabeledSeries* series, std::size_t start,
                         std::size_t length,
                         const std::vector<std::size_t>& channels,
                         double factor);

/// Adds a linearly growing ramp reaching `magnitude * channel_std` at the
/// segment's end (memory-leak shape).
void InjectRamp(LabeledSeries* series, std::size_t start, std::size_t length,
                const std::vector<std::size_t>& channels, double magnitude);

/// Concept drift: permanently shifts the level of the listed channels by
/// `magnitude * channel_std` starting at `start`, blended in linearly over
/// `transition` steps. Labels are left untouched.
void InjectLevelDrift(LabeledSeries* series, std::size_t start,
                      std::size_t transition,
                      const std::vector<std::size_t>& channels,
                      double magnitude);

/// Per-channel standard deviation over the whole series (used by the
/// injectors to express magnitudes in channel-relative units).
std::vector<double> ChannelStddev(const LabeledSeries& series);

}  // namespace streamad::data

#endif  // STREAMAD_DATA_INJECTORS_H_
