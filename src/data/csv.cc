#include "src/data/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace streamad::data {

namespace {

bool ParseRow(const std::string& line, std::vector<double>* out) {
  out->clear();
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) {
    char* end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str()) return false;  // not a number
    out->push_back(v);
  }
  return !out->empty();
}

}  // namespace

std::optional<LabeledSeries> LoadCsv(const std::string& path,
                                     bool has_label_column,
                                     bool skip_header) {
  std::ifstream in(path);
  if (!in) return std::nullopt;

  std::vector<std::vector<double>> rows;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first && skip_header) {
      first = false;
      continue;
    }
    first = false;
    std::vector<double> row;
    if (!ParseRow(line, &row)) return std::nullopt;
    if (!rows.empty() && row.size() != rows.front().size()) {
      return std::nullopt;  // ragged file
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return std::nullopt;

  const std::size_t total_cols = rows.front().size();
  const std::size_t channels = has_label_column ? total_cols - 1 : total_cols;
  if (channels == 0) return std::nullopt;

  LabeledSeries series;
  series.name = path;
  series.values = linalg::Matrix(rows.size(), channels);
  series.labels.assign(rows.size(), 0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < channels; ++c) {
      series.values(r, c) = rows[r][c];
    }
    if (has_label_column) {
      // NOLINT-STREAMAD-NEXTLINE(float-compare): labels are exact 0/1 cells
      series.labels[r] = rows[r][channels] != 0.0 ? 1 : 0;
    }
  }
  series.Validate();
  return series;
}

bool SaveCsv(const LabeledSeries& series, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  for (std::size_t c = 0; c < series.channels(); ++c) {
    out << "ch" << c << ',';
  }
  out << "label\n";
  for (std::size_t t = 0; t < series.length(); ++t) {
    for (std::size_t c = 0; c < series.channels(); ++c) {
      out << series.values(t, c) << ',';
    }
    out << series.labels[t] << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace streamad::data
