#include "src/data/injectors.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace streamad::data {

namespace {

/// Clamps the segment to the series and marks its labels anomalous.
std::size_t PrepareSegment(LabeledSeries* series, std::size_t start,
                           std::size_t length, bool label) {
  STREAMAD_CHECK(series != nullptr);
  STREAMAD_CHECK_MSG(start < series->length(), "segment starts out of range");
  const std::size_t end = std::min(series->length(), start + length);
  if (label) {
    for (std::size_t t = start; t < end; ++t) series->labels[t] = 1;
  }
  return end;
}

}  // namespace

std::vector<double> ChannelStddev(const LabeledSeries& series) {
  const std::size_t n = series.channels();
  const std::size_t t_len = series.length();
  STREAMAD_CHECK(t_len > 1);
  std::vector<double> mean(n, 0.0);
  std::vector<double> var(n, 0.0);
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t c = 0; c < n; ++c) mean[c] += series.values(t, c);
  }
  for (double& m : mean) m /= static_cast<double>(t_len);
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t c = 0; c < n; ++c) {
      const double d = series.values(t, c) - mean[c];
      var[c] += d * d;
    }
  }
  std::vector<double> std_dev(n);
  for (std::size_t c = 0; c < n; ++c) {
    std_dev[c] = std::sqrt(var[c] / static_cast<double>(t_len));
    if (std_dev[c] < 1e-9) std_dev[c] = 1.0;
  }
  return std_dev;
}

void InjectSpike(LabeledSeries* series, std::size_t start, std::size_t length,
                 const std::vector<std::size_t>& channels, double magnitude) {
  const std::size_t end = PrepareSegment(series, start, length, true);
  const std::vector<double> std_dev = ChannelStddev(*series);
  for (std::size_t t = start; t < end; ++t) {
    for (std::size_t c : channels) {
      series->values(t, c) += magnitude * std_dev[c];
    }
  }
}

void InjectStall(LabeledSeries* series, std::size_t start, std::size_t length,
                 const std::vector<std::size_t>& channels) {
  const std::size_t end = PrepareSegment(series, start, length, true);
  for (std::size_t c : channels) {
    const double frozen = series->values(start, c);
    for (std::size_t t = start; t < end; ++t) {
      series->values(t, c) = frozen;
    }
  }
}

void InjectVarianceScale(LabeledSeries* series, std::size_t start,
                         std::size_t length,
                         const std::vector<std::size_t>& channels,
                         double factor) {
  const std::size_t end = PrepareSegment(series, start, length, true);
  // The local level is the mean over the segment itself; scaling the
  // deviation around it preserves the level while changing the variance.
  for (std::size_t c : channels) {
    double level = 0.0;
    for (std::size_t t = start; t < end; ++t) level += series->values(t, c);
    level /= static_cast<double>(end - start);
    for (std::size_t t = start; t < end; ++t) {
      series->values(t, c) = level + factor * (series->values(t, c) - level);
    }
  }
}

void InjectRamp(LabeledSeries* series, std::size_t start, std::size_t length,
                const std::vector<std::size_t>& channels, double magnitude) {
  const std::size_t end = PrepareSegment(series, start, length, true);
  const std::vector<double> std_dev = ChannelStddev(*series);
  const double span = static_cast<double>(end - start);
  for (std::size_t t = start; t < end; ++t) {
    const double progress = static_cast<double>(t - start + 1) / span;
    for (std::size_t c : channels) {
      series->values(t, c) += progress * magnitude * std_dev[c];
    }
  }
}

void InjectLevelDrift(LabeledSeries* series, std::size_t start,
                      std::size_t transition,
                      const std::vector<std::size_t>& channels,
                      double magnitude) {
  STREAMAD_CHECK(series != nullptr);
  STREAMAD_CHECK(start < series->length());
  const std::vector<double> std_dev = ChannelStddev(*series);
  const std::size_t blend_end =
      std::min(series->length(), start + std::max<std::size_t>(1, transition));
  for (std::size_t t = start; t < series->length(); ++t) {
    const double progress =
        t >= blend_end ? 1.0
                       : static_cast<double>(t - start + 1) /
                             static_cast<double>(blend_end - start);
    for (std::size_t c : channels) {
      series->values(t, c) += progress * magnitude * std_dev[c];
    }
  }
}

}  // namespace streamad::data
