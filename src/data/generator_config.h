#ifndef STREAMAD_DATA_GENERATOR_CONFIG_H_
#define STREAMAD_DATA_GENERATOR_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace streamad::data {

/// Shared knobs of the three synthetic corpus generators (DESIGN.md §2).
///
/// The first `normal_prefix` steps of every series are guaranteed
/// anomaly-free so the detectors' initial training phase sees only normal
/// behaviour, matching the paper's setup of building the initial training
/// set from the first 5000 steps. Concept drifts (which are *not*
/// anomalies) and labelled anomaly segments are injected after the prefix.
struct GeneratorConfig {
  /// Steps per series.
  std::size_t length = 12000;
  /// Series per corpus.
  std::size_t num_series = 2;
  /// Master seed; series i uses seed + i.
  std::uint64_t seed = 42;
  /// Anomaly-free prefix for initial training.
  std::size_t normal_prefix = 6000;
  /// Labelled anomaly segments injected after the prefix.
  std::size_t num_anomalies = 6;
  /// Concept drifts injected after the prefix.
  std::size_t num_drifts = 2;
};

}  // namespace streamad::data

#endif  // STREAMAD_DATA_GENERATOR_CONFIG_H_
