#include "src/data/series.h"

#include "src/common/check.h"

namespace streamad::data {

std::size_t LabeledSeries::AnomalyPointCount() const {
  std::size_t count = 0;
  for (int label : labels) count += label != 0 ? 1 : 0;
  return count;
}

void LabeledSeries::Validate() const {
  STREAMAD_CHECK_MSG(labels.size() == values.rows(),
                     "label / value length mismatch");
  for (int label : labels) {
    STREAMAD_CHECK_MSG(label == 0 || label == 1, "labels must be 0/1");
  }
}

}  // namespace streamad::data
