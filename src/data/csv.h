#ifndef STREAMAD_DATA_CSV_H_
#define STREAMAD_DATA_CSV_H_

#include <optional>
#include <string>

#include "src/data/series.h"

namespace streamad::data {

/// Loads a labelled series from a CSV file so the harness can run on the
/// real benchmark corpora when they are available (see DESIGN.md §2).
///
/// Format: one row per time step; all columns are channel values except an
/// optional last column named `label` (when `has_label_column` is true, the
/// last column is parsed as the 0/1 anomaly label). An optional single
/// header line is skipped when `skip_header` is true.
///
/// Returns std::nullopt when the file cannot be opened or a row fails to
/// parse; the library does not throw.
std::optional<LabeledSeries> LoadCsv(const std::string& path,
                                     bool has_label_column = true,
                                     bool skip_header = true);

/// Writes a labelled series to CSV (channel columns then a `label`
/// column), the inverse of `LoadCsv`. Returns false on I/O failure.
bool SaveCsv(const LabeledSeries& series, const std::string& path);

}  // namespace streamad::data

#endif  // STREAMAD_DATA_CSV_H_
