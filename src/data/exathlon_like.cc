#include "src/data/exathlon_like.h"

#include <cmath>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/data/injectors.h"

namespace streamad::data {

namespace {

constexpr double kTwoPi = 6.283185307179586;

// Channel layout: 5 CPU gauges, 4 memory gauges, 4 network counters,
// 3 task gauges.
constexpr std::size_t kCpu = 5;
constexpr std::size_t kMem = 4;
constexpr std::size_t kNet = 4;
constexpr std::size_t kTask = 3;
constexpr std::size_t kChannels = kCpu + kMem + kNet + kTask;

LabeledSeries MakeOneSeries(const GeneratorConfig& config,
                            std::uint64_t seed, std::size_t index) {
  Rng rng(seed);
  LabeledSeries series;
  series.name = "exathlon-like-" + std::to_string(index);
  series.values = linalg::Matrix(config.length, kChannels);
  series.labels.assign(config.length, 0);

  // Workload-change drift points (unlabeled): level and period shift.
  std::vector<std::size_t> drift_starts;
  std::vector<double> drift_level;
  std::vector<double> drift_period;
  for (std::size_t d = 0; d < config.num_drifts; ++d) {
    const std::size_t lo =
        config.normal_prefix +
        (d + 1) * (config.length - config.normal_prefix) /
            (config.num_drifts + 2);
    drift_starts.push_back(lo);
    // Strong enough that the per-window mean moves beyond one training-set
    // sigma (the mu/sigma-Change trigger).
    drift_level.push_back((rng.Bernoulli(0.5) ? 1.0 : -1.0) *
                          rng.Uniform(1.0, 1.6));
    drift_period.push_back(rng.Uniform(0.7, 1.4));
  }

  std::vector<double> cpu_phase(kCpu);
  std::vector<double> cpu_period(kCpu);
  for (std::size_t c = 0; c < kCpu; ++c) {
    cpu_phase[c] = rng.Uniform(0.0, kTwoPi);
    // Short relative to the training-set span (see the note in
    // smd_like.cc on partial-cycle excess).
    cpu_period[c] = rng.Uniform(15.0, 35.0);
  }
  std::vector<double> mem_level(kMem);
  std::vector<double> mem_slope(kMem);
  std::vector<double> mem_value(kMem);
  for (std::size_t c = 0; c < kMem; ++c) {
    mem_level[c] = rng.Uniform(2.0, 4.0);
    // GC cycle of ~50-150 steps, so a training set spans several cycles.
    mem_slope[c] = rng.Uniform(0.01, 0.03);
    mem_value[c] = mem_level[c];
  }
  std::vector<double> net_rate(kNet);
  std::vector<double> net_value(kNet, 0.0);
  for (std::size_t c = 0; c < kNet; ++c) net_rate[c] = rng.Uniform(0.5, 1.5);
  std::vector<double> task_level(kTask);
  for (std::size_t c = 0; c < kTask; ++c) {
    task_level[c] = std::floor(rng.Uniform(2.0, 8.0));
  }

  for (std::size_t t = 0; t < config.length; ++t) {
    double level_shift = 0.0;
    double period_scale = 1.0;
    for (std::size_t d = 0; d < drift_starts.size(); ++d) {
      if (t < drift_starts[d]) continue;
      const double blend =
          std::min(1.0, static_cast<double>(t - drift_starts[d]) / 50.0);
      level_shift += blend * drift_level[d];
      period_scale *= 1.0 + blend * (drift_period[d] - 1.0);
    }

    std::size_t ch = 0;
    // CPU gauges: periodic utilisation around a workload level.
    for (std::size_t c = 0; c < kCpu; ++c, ++ch) {
      const double osc =
          std::sin(kTwoPi * static_cast<double>(t) /
                       (cpu_period[c] * period_scale) +
                   cpu_phase[c]);
      series.values(t, ch) =
          2.5 + level_shift + 0.8 * osc + rng.Gaussian(0.0, 0.12);
    }
    // Memory gauges: slow ramp, drained smoothly by the GC (an abrupt
    // reset would be an unlabeled reconstruction spike at every cycle).
    for (std::size_t c = 0; c < kMem; ++c, ++ch) {
      if (mem_value[c] > mem_level[c] + 1.5) {
        mem_value[c] -= 0.25;  // GC draining phase
      } else {
        mem_value[c] += mem_slope[c] * period_scale;
      }
      series.values(t, ch) =
          mem_value[c] + 0.4 * level_shift + rng.Gaussian(0.0, 0.05);
    }
    // Network gauges: triangular load waves (continuous, unlike a rolled-
    // over counter) with workload-dependent rate.
    for (std::size_t c = 0; c < kNet; ++c, ++ch) {
      net_value[c] += net_rate[c] * (1.0 + 0.3 * level_shift);
      const double phase = std::fmod(net_value[c], 40.0) / 40.0;
      const double triangle = phase < 0.5 ? phase * 2.0 : 2.0 - phase * 2.0;
      series.values(t, ch) = 2.0 * triangle + rng.Gaussian(0.0, 0.08);
    }
    // Task gauges: piecewise constant with rare re-scheduling (rare
    // enough that the jumps do not dominate the false-alarm budget).
    for (std::size_t c = 0; c < kTask; ++c, ++ch) {
      if (rng.Bernoulli(0.0005)) {
        task_level[c] = std::floor(rng.Uniform(2.0, 8.0));
      }
      series.values(t, ch) =
          task_level[c] / 2.0 + level_shift * 0.2 + rng.Gaussian(0.0, 0.03);
    }
  }

  // Anomalies: rotate through the Exathlon event families.
  const std::size_t tail = config.length - config.normal_prefix;
  for (std::size_t a = 0; a < config.num_anomalies; ++a) {
    const std::size_t slot = tail / config.num_anomalies;
    const std::size_t start =
        config.normal_prefix + a * slot +
        static_cast<std::size_t>(rng.UniformInt(slot / 8, slot / 2));
    const std::size_t length =
        static_cast<std::size_t>(rng.UniformInt(30, 100));
    switch (a % 3) {
      case 0:  // CPU burst across the CPU gauges
        InjectSpike(&series, start, length, {0, 1, 2, 3, 4}, 4.0);
        break;
      case 1:  // memory leak ramp on two memory gauges
        InjectRamp(&series, start, length, {kCpu, kCpu + 1}, 6.0);
        break;
      case 2: {  // network counters stuck at an abnormal reading
        const std::vector<std::size_t> net_channels = {
            kCpu + kMem, kCpu + kMem + 1, kCpu + kMem + 2};
        InjectStall(&series, start, length, net_channels);
        // A stall at a normal level is invisible to reconstruction-based
        // detectors (a frozen signal is trivially easy to predict); real
        // stuck-counter incidents freeze at an out-of-range value.
        InjectSpike(&series, start, length, net_channels, 3.0);
        break;
      }
    }
  }

  series.Validate();
  STREAMAD_CHECK_MSG(series.AnomalyPointCount() > 0, "no anomalies injected");
  return series;
}

}  // namespace

Corpus MakeExathlonLike(const GeneratorConfig& config) {
  STREAMAD_CHECK(config.length > config.normal_prefix);
  STREAMAD_CHECK(config.num_anomalies > 0);
  Corpus corpus;
  corpus.name = "Exathlon-like";
  for (std::size_t i = 0; i < config.num_series; ++i) {
    corpus.series.push_back(MakeOneSeries(config, config.seed + 1000 + i, i));
  }
  return corpus;
}

}  // namespace streamad::data
