#ifndef STREAMAD_DATA_SMD_LIKE_H_
#define STREAMAD_DATA_SMD_LIKE_H_

#include "src/data/generator_config.h"
#include "src/data/series.h"

namespace streamad::data {

/// Synthetic stand-in for the **SMD** (Server Machine Dataset, Su et al.)
/// corpus: 38 heterogeneous server telemetry channels — a mix of daily-
/// periodic gauges, bursty counters and near-constant indicators, the
/// channel zoo a real machine exposes.
///
/// Anomalies are correlated multi-channel incidents: a random subset of
/// 5-10 channels shifts level / spikes together, as real server incidents
/// do. Concept drift is a slow level trend on a channel subset.
Corpus MakeSmdLike(const GeneratorConfig& config = GeneratorConfig());

}  // namespace streamad::data

#endif  // STREAMAD_DATA_SMD_LIKE_H_
