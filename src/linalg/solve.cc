#include "src/linalg/solve.h"

#include <cmath>
#include <cstddef>
#include <vector>

namespace streamad::linalg {

bool CholeskySolve(const Matrix& a, const Matrix& b, Matrix* x) {
  STREAMAD_CHECK(x != nullptr);
  STREAMAD_CHECK(a.rows() == a.cols());
  STREAMAD_CHECK(a.rows() == b.rows());
  const std::size_t n = a.rows();

  // Factor A = L Lᵀ.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 1e-14) return false;  // not positive definite
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }

  // Solve L z = b (forward), then Lᵀ x = z (backward), per column of b.
  Matrix out(n, b.cols());
  std::vector<double> z(n);
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      double sum = b(i, c);
      for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * z[k];
      z[i] = sum / l(i, i);
    }
    for (std::size_t ii = n; ii-- > 0;) {
      double sum = z[ii];
      for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * out(k, c);
      out(ii, c) = sum / l(ii, ii);
    }
  }
  *x = std::move(out);
  return true;
}

bool LuSolve(const Matrix& a, const Matrix& b, Matrix* x) {
  STREAMAD_CHECK(x != nullptr);
  STREAMAD_CHECK(a.rows() == a.cols());
  STREAMAD_CHECK(a.rows() == b.rows());
  const std::size_t n = a.rows();

  Matrix lu = a;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest magnitude in the column.
    std::size_t pivot = col;
    double best = std::fabs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(lu(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-14) return false;  // singular
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(lu(pivot, j), lu(col, j));
      }
      std::swap(perm[pivot], perm[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      lu(r, col) /= lu(col, col);
      const double factor = lu(r, col);
      for (std::size_t j = col + 1; j < n; ++j) {
        lu(r, j) -= factor * lu(col, j);
      }
    }
  }

  Matrix out(n, b.cols());
  std::vector<double> z(n);
  for (std::size_t c = 0; c < b.cols(); ++c) {
    // Forward substitution with permuted right-hand side (L has unit diag).
    for (std::size_t i = 0; i < n; ++i) {
      double sum = b(perm[i], c);
      for (std::size_t k = 0; k < i; ++k) sum -= lu(i, k) * z[k];
      z[i] = sum;
    }
    // Backward substitution.
    for (std::size_t ii = n; ii-- > 0;) {
      double sum = z[ii];
      for (std::size_t k = ii + 1; k < n; ++k) sum -= lu(ii, k) * out(k, c);
      out(ii, c) = sum / lu(ii, ii);
    }
  }
  *x = std::move(out);
  return true;
}

Matrix LeastSquares(const Matrix& x, const Matrix& y, double ridge) {
  STREAMAD_CHECK(x.rows() == y.rows());
  const Matrix gram = MatMulTransA(x, x);
  const Matrix rhs = MatMulTransA(x, y);
  return SolveNormalEquations(gram, rhs, ridge);
}

Matrix SolveNormalEquations(const Matrix& gram, const Matrix& rhs,
                            double ridge) {
  STREAMAD_CHECK(gram.rows() == gram.cols());
  STREAMAD_CHECK(gram.rows() == rhs.rows());
  STREAMAD_CHECK(ridge >= 0.0);
  Matrix ridged = gram;
  for (std::size_t i = 0; i < ridged.rows(); ++i) ridged(i, i) += ridge;
  Matrix beta;
  if (!CholeskySolve(ridged, rhs, &beta)) {
    // Gram matrix not SPD despite the ridge (e.g. severely rank-deficient
    // inputs): fall back to LU with a stronger ridge.
    for (std::size_t i = 0; i < ridged.rows(); ++i) ridged(i, i) += 1e-6;
    STREAMAD_CHECK_MSG(LuSolve(ridged, rhs, &beta),
                       "least squares: singular Gram matrix");
  }
  return beta;
}

}  // namespace streamad::linalg
