#include "src/linalg/matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace streamad::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    STREAMAD_CHECK_MSG(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::RowVector(const std::vector<double>& values) {
  return FromFlat(1, values.size(), values);
}

Matrix Matrix::ColVector(const std::vector<double>& values) {
  return FromFlat(values.size(), 1, values);
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromFlat(std::size_t rows, std::size_t cols,
                        std::vector<double> flat) {
  STREAMAD_CHECK(flat.size() == rows * cols);
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(flat);
  return m;
}

std::vector<double> Matrix::Row(std::size_t r) const {
  STREAMAD_CHECK(r < rows_);
  return std::vector<double>(data_.begin() + r * cols_,
                             data_.begin() + (r + 1) * cols_);
}

std::vector<double> Matrix::Col(std::size_t c) const {
  STREAMAD_CHECK(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::SetRow(std::size_t r, std::span<const double> values) {
  STREAMAD_CHECK(r < rows_);
  STREAMAD_CHECK(values.size() == cols_);
  std::copy(values.begin(), values.end(), data_.begin() + r * cols_);
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::Reshaped(std::size_t new_rows, std::size_t new_cols) const {
  STREAMAD_CHECK(new_rows * new_cols == data_.size());
  Matrix m;
  m.rows_ = new_rows;
  m.cols_ = new_cols;
  m.data_ = data_;
  return m;
}

void Matrix::ReshapeInPlace(std::size_t new_rows, std::size_t new_cols) {
  STREAMAD_CHECK(new_rows * new_cols == data_.size());
  rows_ = new_rows;
  cols_ = new_cols;
}

void Matrix::EnsureShape(std::size_t rows, std::size_t cols) {
  if (rows_ == rows && cols_ == cols) return;
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

// ---------------------------------------------------------------- kernels --

namespace {

std::atomic<KernelMode> g_kernel_mode{KernelMode::kOptimized};

/// The straightforward i-k-j product — the original implementation, kept
/// verbatim as the reference the tuned kernels are validated against.
void MatMulReference(const Matrix& a, const Matrix& b, Matrix* out) {
  out->Fill(0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      // NOLINT-STREAMAD-NEXTLINE(float-compare): value-preserving skip
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        (*out)(i, j) += aik * b(k, j);
      }
    }
  }
}

// On x86-64 Linux the blocked kernels are cloned for AVX2 with runtime
// dispatch (ifunc). AVX2 only widens the vectors; it does NOT enable FMA,
// so no a*b+c contraction can occur and every lane performs the exact same
// IEEE mul-then-add sequence as the baseline clone — results stay
// bit-identical across dispatch targets.
//
// Disabled under ThreadSanitizer: ifunc resolvers run during early dynamic
// linking, before the TSan runtime is initialised, and the instrumented
// resolver crashes the process at startup. Plain dispatch-free kernels are
// bit-identical anyway (see above), so sanitizer builds lose nothing but
// the AVX2 speedup.
#if defined(__SANITIZE_THREAD__)
#define STREAMAD_KERNEL_CLONES
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define STREAMAD_KERNEL_CLONES
#endif
#endif
#if !defined(STREAMAD_KERNEL_CLONES) && defined(__x86_64__) && \
    defined(__linux__) && defined(__has_attribute)
#if __has_attribute(target_clones)
#define STREAMAD_KERNEL_CLONES __attribute__((target_clones("avx2", "default")))
#endif
#endif
#ifndef STREAMAD_KERNEL_CLONES
#define STREAMAD_KERNEL_CLONES
#endif

// Register-tile sizes of the blocked kernels: each output tile is a
// kMr x kNr accumulator block held in registers for the full k sweep.
//
// Bit-exactness argument (why the blocked kernels equal the reference):
// for every output element C(i,j), both kernels add the products
// A(i,k)*B(k,j) in ascending-k order into an accumulator that starts at
// +0.0; whether that accumulator lives in a register or in C's memory
// does not change the arithmetic. The reference's `aik == 0.0` skip is
// also value-preserving on finite data: an accumulator seeded with +0.0
// can never become -0.0 (x + (-x) rounds to +0.0), and v + (±0.0) == v
// for every finite v that is not -0.0.
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 8;

/// C[m x n] = A[m x k] * B[k x n], row-major raw buffers.
// STREAMAD_HOT: innermost Step-path kernel
STREAMAD_KERNEL_CLONES
void MatMulBlocked(const double* a, const double* b, double* c,
                   std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i0 = 0; i0 < m; i0 += kMr) {
    const std::size_t ib = std::min(kMr, m - i0);
    for (std::size_t j0 = 0; j0 < n; j0 += kNr) {
      const std::size_t jb = std::min(kNr, n - j0);
      double acc[kMr][kNr] = {};
      if (ib == kMr && jb == kNr) {
        // Full tile: fixed trip counts so the compiler unrolls and keeps
        // the 32 accumulators in vector registers.
        for (std::size_t p = 0; p < k; ++p) {
          const double* brow = b + p * n + j0;
          for (std::size_t i = 0; i < kMr; ++i) {
            const double aip = a[(i0 + i) * k + p];
            for (std::size_t j = 0; j < kNr; ++j) {
              acc[i][j] += aip * brow[j];
            }
          }
        }
      } else {
        for (std::size_t p = 0; p < k; ++p) {
          const double* brow = b + p * n + j0;
          for (std::size_t i = 0; i < ib; ++i) {
            const double aip = a[(i0 + i) * k + p];
            for (std::size_t j = 0; j < jb; ++j) {
              acc[i][j] += aip * brow[j];
            }
          }
        }
      }
      for (std::size_t i = 0; i < ib; ++i) {
        double* crow = c + (i0 + i) * n + j0;
        for (std::size_t j = 0; j < jb; ++j) crow[j] = acc[i][j];
      }
    }
  }
}

/// C[m x n] = Aᵀ * B with A[k x m], B[k x n]: the k index runs over the
/// *rows* of both inputs, so both are swept contiguously.
// STREAMAD_HOT: innermost Step-path kernel
STREAMAD_KERNEL_CLONES
void MatMulTransABlocked(const double* a, const double* b, double* c,
                         std::size_t k, std::size_t m, std::size_t n) {
  for (std::size_t i0 = 0; i0 < m; i0 += kMr) {
    const std::size_t ib = std::min(kMr, m - i0);
    for (std::size_t j0 = 0; j0 < n; j0 += kNr) {
      const std::size_t jb = std::min(kNr, n - j0);
      double acc[kMr][kNr] = {};
      for (std::size_t p = 0; p < k; ++p) {
        const double* arow = a + p * m + i0;
        const double* brow = b + p * n + j0;
        for (std::size_t i = 0; i < ib; ++i) {
          const double api = arow[i];
          for (std::size_t j = 0; j < jb; ++j) {
            acc[i][j] += api * brow[j];
          }
        }
      }
      for (std::size_t i = 0; i < ib; ++i) {
        double* crow = c + (i0 + i) * n + j0;
        for (std::size_t j = 0; j < jb; ++j) crow[j] = acc[i][j];
      }
    }
  }
}

/// C[m x n] = A * Bᵀ with A[m x k], B[n x k]: every output is a dot
/// product of two contiguous rows.
// STREAMAD_HOT: innermost Step-path kernel
STREAMAD_KERNEL_CLONES
void MatMulTransBBlocked(const double* a, const double* b, double* c,
                         std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const double* brow = b + j * k;
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      c[i * n + j] = acc;
    }
  }
}

}  // namespace

KernelMode GetKernelMode() {
  return g_kernel_mode.load(std::memory_order_relaxed);
}

void SetKernelMode(KernelMode mode) {
  g_kernel_mode.store(mode, std::memory_order_relaxed);
}

// STREAMAD_HOT: Step-path entry of every NN layer and VAR forecast
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  STREAMAD_CHECK(out != nullptr);
  STREAMAD_CHECK_MSG(a.cols() == b.rows(), "MatMul shape mismatch");
  STREAMAD_CHECK(out != &a && out != &b);
  out->EnsureShape(a.rows(), b.cols());
  if (GetKernelMode() == KernelMode::kReference) {
    MatMulReference(a, b, out);
    return;
  }
  MatMulBlocked(a.data().data(), b.data().data(),
                out->mutable_data().data(), a.rows(), a.cols(), b.cols());
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMulInto(a, b, &out);
  return out;
}

// STREAMAD_HOT
void MatMulTransAInto(const Matrix& a, const Matrix& b, Matrix* out) {
  STREAMAD_CHECK(out != nullptr);
  STREAMAD_CHECK_MSG(a.rows() == b.rows(), "MatMulTransA shape mismatch");
  STREAMAD_CHECK(out != &a && out != &b);
  if (GetKernelMode() == KernelMode::kReference) {
    const Matrix at = Transpose(a);
    out->EnsureShape(a.cols(), b.cols());
    MatMulReference(at, b, out);
    return;
  }
  out->EnsureShape(a.cols(), b.cols());
  MatMulTransABlocked(a.data().data(), b.data().data(),
                      out->mutable_data().data(), a.rows(), a.cols(),
                      b.cols());
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMulTransAInto(a, b, &out);
  return out;
}

// STREAMAD_HOT
void MatMulTransBInto(const Matrix& a, const Matrix& b, Matrix* out) {
  STREAMAD_CHECK(out != nullptr);
  STREAMAD_CHECK_MSG(a.cols() == b.cols(), "MatMulTransB shape mismatch");
  STREAMAD_CHECK(out != &a && out != &b);
  if (GetKernelMode() == KernelMode::kReference) {
    const Matrix bt = Transpose(b);
    out->EnsureShape(a.rows(), b.rows());
    MatMulReference(a, bt, out);
    return;
  }
  out->EnsureShape(a.rows(), b.rows());
  MatMulTransBBlocked(a.data().data(), b.data().data(),
                      out->mutable_data().data(), a.rows(), a.cols(),
                      b.rows());
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMulTransBInto(a, b, &out);
  return out;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) out(j, i) = a(i, j);
  }
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  STREAMAD_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out = a;
  AddInPlace(b, &out);
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  STREAMAD_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out = a;
  SubInPlace(b, &out);
  return out;
}

void AddInPlace(const Matrix& b, Matrix* a) {
  STREAMAD_CHECK(a != nullptr);
  STREAMAD_CHECK(a->rows() == b.rows() && a->cols() == b.cols());
  for (std::size_t i = 0; i < a->size(); ++i) {
    a->at_flat(i) += b.at_flat(i);
  }
}

void SubInPlace(const Matrix& b, Matrix* a) {
  STREAMAD_CHECK(a != nullptr);
  STREAMAD_CHECK(a->rows() == b.rows() && a->cols() == b.cols());
  for (std::size_t i = 0; i < a->size(); ++i) {
    a->at_flat(i) -= b.at_flat(i);
  }
}

// STREAMAD_HOT
void SubInto(const Matrix& a, const Matrix& b, Matrix* out) {
  STREAMAD_CHECK(out != nullptr);
  STREAMAD_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  out->EnsureShape(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out->at_flat(i) = a.at_flat(i) - b.at_flat(i);
  }
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  STREAMAD_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out = a;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.at_flat(i) *= b.at_flat(i);
  }
  return out;
}

Matrix Scale(const Matrix& a, double s) {
  Matrix out = a;
  ScaleInPlace(s, &out);
  return out;
}

void ScaleInPlace(double s, Matrix* a) {
  STREAMAD_CHECK(a != nullptr);
  for (std::size_t i = 0; i < a->size(); ++i) a->at_flat(i) *= s;
}

// STREAMAD_HOT
void ScaleInto(const Matrix& a, double s, Matrix* out) {
  STREAMAD_CHECK(out != nullptr);
  out->EnsureShape(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out->at_flat(i) = a.at_flat(i) * s;
  }
}

void Axpy(double s, const Matrix& b, Matrix* a) {
  STREAMAD_CHECK(a != nullptr);
  STREAMAD_CHECK(a->rows() == b.rows() && a->cols() == b.cols());
  for (std::size_t i = 0; i < a->size(); ++i) {
    a->at_flat(i) += s * b.at_flat(i);
  }
}

// STREAMAD_HOT
void AxpyInto(double s, const Matrix& x, const Matrix& y, Matrix* out) {
  STREAMAD_CHECK(out != nullptr);
  STREAMAD_CHECK(x.rows() == y.rows() && x.cols() == y.cols());
  out->EnsureShape(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out->at_flat(i) = y.at_flat(i) + s * x.at_flat(i);
  }
}

double Sum(const Matrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a.at_flat(i);
  return s;
}

double FrobeniusNorm(const Matrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += a.at_flat(i) * a.at_flat(i);
  }
  return std::sqrt(s);
}

double FlatDot(const Matrix& a, const Matrix& b) {
  STREAMAD_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += a.at_flat(i) * b.at_flat(i);
  }
  return s;
}

// STREAMAD_HOT: per-step nonconformity scoring
double CosineSimilarity(const Matrix& a, const Matrix& b) {
  const double na = FrobeniusNorm(a);
  const double nb = FrobeniusNorm(b);
  constexpr double kEps = 1e-12;
  if (na < kEps && nb < kEps) return 1.0;
  if (na < kEps || nb < kEps) return 0.0;
  double cos = FlatDot(a, b) / (na * nb);
  if (cos > 1.0) cos = 1.0;
  if (cos < -1.0) cos = -1.0;
  return cos;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  Matrix out = a;
  AddRowBroadcastInPlace(row, &out);
  return out;
}

void AddRowBroadcastInPlace(const Matrix& row, Matrix* a) {
  STREAMAD_CHECK(a != nullptr);
  STREAMAD_CHECK(row.rows() == 1 && row.cols() == a->cols());
  for (std::size_t i = 0; i < a->rows(); ++i) {
    for (std::size_t j = 0; j < a->cols(); ++j) (*a)(i, j) += row(0, j);
  }
}

// STREAMAD_HOT
void AddRowBroadcastInto(const Matrix& a, const Matrix& row, Matrix* out) {
  STREAMAD_CHECK(out != nullptr);
  STREAMAD_CHECK(row.rows() == 1 && row.cols() == a.cols());
  out->EnsureShape(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      (*out)(i, j) = a(i, j) + row(0, j);
    }
  }
}

Matrix MeanRows(const Matrix& a) {
  STREAMAD_CHECK(a.rows() > 0);
  Matrix out(1, a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) out(0, j) += a(i, j);
  }
  const double inv = 1.0 / static_cast<double>(a.rows());
  for (std::size_t j = 0; j < a.cols(); ++j) out(0, j) *= inv;
  return out;
}

}  // namespace streamad::linalg
