#include "src/linalg/matrix.h"

#include <cmath>

namespace streamad::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    STREAMAD_CHECK_MSG(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::RowVector(const std::vector<double>& values) {
  return FromFlat(1, values.size(), values);
}

Matrix Matrix::ColVector(const std::vector<double>& values) {
  return FromFlat(values.size(), 1, values);
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromFlat(std::size_t rows, std::size_t cols,
                        std::vector<double> flat) {
  STREAMAD_CHECK(flat.size() == rows * cols);
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(flat);
  return m;
}

std::vector<double> Matrix::Row(std::size_t r) const {
  STREAMAD_CHECK(r < rows_);
  return std::vector<double>(data_.begin() + r * cols_,
                             data_.begin() + (r + 1) * cols_);
}

std::vector<double> Matrix::Col(std::size_t c) const {
  STREAMAD_CHECK(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::SetRow(std::size_t r, const std::vector<double>& values) {
  STREAMAD_CHECK(r < rows_);
  STREAMAD_CHECK(values.size() == cols_);
  std::copy(values.begin(), values.end(), data_.begin() + r * cols_);
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::Reshaped(std::size_t new_rows, std::size_t new_cols) const {
  STREAMAD_CHECK(new_rows * new_cols == data_.size());
  Matrix m;
  m.rows_ = new_rows;
  m.cols_ = new_cols;
  m.data_ = data_;
  return m;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  STREAMAD_CHECK_MSG(a.cols() == b.rows(), "MatMul shape mismatch");
  Matrix out(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop contiguous over both b and out.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += aik * b(k, j);
      }
    }
  }
  return out;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) out(j, i) = a(i, j);
  }
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  STREAMAD_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out = a;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.at_flat(i) += b.at_flat(i);
  }
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  STREAMAD_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out = a;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.at_flat(i) -= b.at_flat(i);
  }
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  STREAMAD_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out = a;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.at_flat(i) *= b.at_flat(i);
  }
  return out;
}

Matrix Scale(const Matrix& a, double s) {
  Matrix out = a;
  for (std::size_t i = 0; i < out.size(); ++i) out.at_flat(i) *= s;
  return out;
}

void Axpy(double s, const Matrix& b, Matrix* a) {
  STREAMAD_CHECK(a != nullptr);
  STREAMAD_CHECK(a->rows() == b.rows() && a->cols() == b.cols());
  for (std::size_t i = 0; i < a->size(); ++i) {
    a->at_flat(i) += s * b.at_flat(i);
  }
}

double Sum(const Matrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a.at_flat(i);
  return s;
}

double FrobeniusNorm(const Matrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += a.at_flat(i) * a.at_flat(i);
  }
  return std::sqrt(s);
}

double FlatDot(const Matrix& a, const Matrix& b) {
  STREAMAD_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += a.at_flat(i) * b.at_flat(i);
  }
  return s;
}

double CosineSimilarity(const Matrix& a, const Matrix& b) {
  const double na = FrobeniusNorm(a);
  const double nb = FrobeniusNorm(b);
  constexpr double kEps = 1e-12;
  if (na < kEps && nb < kEps) return 1.0;
  if (na < kEps || nb < kEps) return 0.0;
  double cos = FlatDot(a, b) / (na * nb);
  if (cos > 1.0) cos = 1.0;
  if (cos < -1.0) cos = -1.0;
  return cos;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  STREAMAD_CHECK(row.rows() == 1 && row.cols() == a.cols());
  Matrix out = a;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) out(i, j) += row(0, j);
  }
  return out;
}

Matrix MeanRows(const Matrix& a) {
  STREAMAD_CHECK(a.rows() > 0);
  Matrix out(1, a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) out(0, j) += a(i, j);
  }
  const double inv = 1.0 / static_cast<double>(a.rows());
  for (std::size_t j = 0; j < a.cols(); ++j) out(0, j) *= inv;
  return out;
}

}  // namespace streamad::linalg
