#ifndef STREAMAD_LINALG_MATRIX_H_
#define STREAMAD_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "src/common/check.h"

namespace streamad::linalg {

/// Dense row-major matrix of doubles.
///
/// This is the single numeric container of the library: stream windows
/// (`w x N`), neural-network weights and activations, VAR coefficient
/// matrices and isolation-forest point sets are all `Matrix` instances.
/// The class is a value type — copyable, movable, comparable — and keeps the
/// surface small: construction, element access, shape queries and in-place
/// fills. All algebraic operations live in free functions below so that the
/// reader can find every arithmetic routine in one place.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// `rows x cols` matrix, zero-initialised.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// `rows x cols` matrix with every element set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix from nested initialiser lists; all rows must have the
  /// same length. Intended for tests and small literals.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Builds a `1 x values.size()` row vector.
  static Matrix RowVector(const std::vector<double>& values);

  /// Builds a `values.size() x 1` column vector.
  static Matrix ColVector(const std::vector<double>& values);

  /// Identity matrix of size `n x n`.
  static Matrix Identity(std::size_t n);

  /// Wraps an existing flat row-major buffer (copied).
  static Matrix FromFlat(std::size_t rows, std::size_t cols,
                         std::vector<double> flat);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    STREAMAD_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    STREAMAD_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Flat row-major access (useful when a window is treated as one long
  /// vector, e.g. the `r(x_t)` reshaping operation of the paper's AE).
  double& at_flat(std::size_t i) {
    STREAMAD_DCHECK(i < data_.size());
    return data_[i];
  }
  double at_flat(std::size_t i) const {
    STREAMAD_DCHECK(i < data_.size());
    return data_[i];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// Copies row `r` into a std::vector.
  std::vector<double> Row(std::size_t r) const;

  /// Copies column `c` into a std::vector.
  std::vector<double> Col(std::size_t c) const;

  /// Overwrites row `r` with `values` (must have `cols()` entries).
  void SetRow(std::size_t r, const std::vector<double>& values);

  /// Sets all elements to `value`.
  void Fill(double value);

  /// Reinterprets the buffer with a new shape; `new_rows * new_cols` must
  /// equal `size()`. Constant time.
  Matrix Reshaped(std::size_t new_rows, std::size_t new_cols) const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Matrix product `a * b`; requires `a.cols() == b.rows()`.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// Transpose.
Matrix Transpose(const Matrix& a);

/// Elementwise sum / difference; shapes must match.
Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);

/// Elementwise (Hadamard) product; shapes must match.
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// Scalar multiple.
Matrix Scale(const Matrix& a, double s);

/// In-place `a += s * b`; shapes must match. The workhorse of the SGD /
/// Adam update loops.
void Axpy(double s, const Matrix& b, Matrix* a);

/// Sum of all elements.
double Sum(const Matrix& a);

/// Frobenius norm (L2 norm of the flattened matrix).
double FrobeniusNorm(const Matrix& a);

/// Dot product of the flattened matrices; shapes must match.
double FlatDot(const Matrix& a, const Matrix& b);

/// Cosine similarity of the flattened matrices, in [-1, 1]. Returns 1 when
/// both inputs are (near-)zero and 0 when exactly one is, matching the
/// convention that two silent signals are maximally similar.
double CosineSimilarity(const Matrix& a, const Matrix& b);

/// Broadcasts a `1 x c` row across all rows of `a` (adds it to each row).
Matrix AddRowBroadcast(const Matrix& a, const Matrix& row);

/// Mean over rows: returns a `1 x cols` matrix.
Matrix MeanRows(const Matrix& a);

}  // namespace streamad::linalg

#endif  // STREAMAD_LINALG_MATRIX_H_
