#ifndef STREAMAD_LINALG_MATRIX_H_
#define STREAMAD_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "src/common/check.h"

namespace streamad::linalg {

/// Dense row-major matrix of doubles.
///
/// This is the single numeric container of the library: stream windows
/// (`w x N`), neural-network weights and activations, VAR coefficient
/// matrices and isolation-forest point sets are all `Matrix` instances.
/// The class is a value type — copyable, movable, comparable — and keeps the
/// surface small: construction, element access, shape queries and in-place
/// fills. All algebraic operations live in free functions below so that the
/// reader can find every arithmetic routine in one place.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// `rows x cols` matrix, zero-initialised.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// `rows x cols` matrix with every element set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix from nested initialiser lists; all rows must have the
  /// same length. Intended for tests and small literals.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Builds a `1 x values.size()` row vector.
  static Matrix RowVector(const std::vector<double>& values);

  /// Builds a `values.size() x 1` column vector.
  static Matrix ColVector(const std::vector<double>& values);

  /// Identity matrix of size `n x n`.
  static Matrix Identity(std::size_t n);

  /// Wraps an existing flat row-major buffer (copied).
  static Matrix FromFlat(std::size_t rows, std::size_t cols,
                         std::vector<double> flat);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    STREAMAD_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    STREAMAD_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Flat row-major access (useful when a window is treated as one long
  /// vector, e.g. the `r(x_t)` reshaping operation of the paper's AE).
  double& at_flat(std::size_t i) {
    STREAMAD_DCHECK(i < data_.size());
    return data_[i];
  }
  double at_flat(std::size_t i) const {
    STREAMAD_DCHECK(i < data_.size());
    return data_[i];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// Copies row `r` into a std::vector.
  std::vector<double> Row(std::size_t r) const;

  /// Copies column `c` into a std::vector.
  std::vector<double> Col(std::size_t c) const;

  /// Borrowed view of row `r` — no copy. Invalidated by any reshaping
  /// operation. The accessor for hot loops (kNN distances, scalers,
  /// batch assembly) where `Row`'s vector allocation dominates.
  std::span<const double> RowSpan(std::size_t r) const {
    STREAMAD_DCHECK(r < rows_);
    return std::span<const double>(data_.data() + r * cols_, cols_);
  }
  std::span<double> MutableRowSpan(std::size_t r) {
    STREAMAD_DCHECK(r < rows_);
    return std::span<double>(data_.data() + r * cols_, cols_);
  }

  /// Overwrites row `r` with `values` (must have `cols()` entries).
  /// Accepts any contiguous range of doubles (vector, span, array).
  void SetRow(std::size_t r, std::span<const double> values);
  void SetRow(std::size_t r, std::initializer_list<double> values) {
    SetRow(r, std::span<const double>(values.begin(), values.size()));
  }

  /// Sets all elements to `value`.
  void Fill(double value);

  /// Reinterprets the buffer with a new shape; `new_rows * new_cols` must
  /// equal `size()`. Constant time.
  Matrix Reshaped(std::size_t new_rows, std::size_t new_cols) const;

  /// In-place `Reshaped`: reinterprets this matrix's buffer without
  /// copying; `new_rows * new_cols` must equal `size()`.
  void ReshapeInPlace(std::size_t new_rows, std::size_t new_cols);

  /// Resizes to `rows x cols`, reusing the existing buffer capacity.
  /// Element values are unspecified after a shape change (callers are
  /// expected to overwrite); when the shape already matches this is a
  /// no-op. The primitive behind the out-parameter kernels and workspace
  /// pools: steady-state reuse never touches the heap once capacity has
  /// grown to the high-water mark.
  void EnsureShape(std::size_t rows, std::size_t cols);

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---------------------------------------------------------------- kernels --

/// Selects between the tuned compute kernels and the straightforward
/// reference loops. Both produce bit-identical results on finite inputs
/// (the blocked kernels preserve the reference accumulation order per
/// output element); the switch exists so tests can *prove* that, and so a
/// regression can be bisected to kernel vs. call-site changes. The mode is
/// a process-wide atomic — flip it only from single-threaded test code.
enum class KernelMode {
  kOptimized,
  kReference,
};

KernelMode GetKernelMode();
void SetKernelMode(KernelMode mode);

/// RAII kernel-mode override for tests.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(KernelMode mode) : previous_(GetKernelMode()) {
    SetKernelMode(mode);
  }
  ~ScopedKernelMode() { SetKernelMode(previous_); }
  ScopedKernelMode(const ScopedKernelMode&) = delete;
  ScopedKernelMode& operator=(const ScopedKernelMode&) = delete;

 private:
  KernelMode previous_;
};

/// Matrix product `a * b`; requires `a.cols() == b.rows()`.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// Out-parameter `MatMul`: writes `a * b` into `*out` (reshaped as
/// needed, reusing its buffer). `out` must not alias `a` or `b`.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out);

/// Fused `aᵀ * b` without materialising the transpose; `a: k x m`,
/// `b: k x n`, result `m x n`. Bit-identical to
/// `MatMul(Transpose(a), b)`. Backs `Linear::Backward`'s `xᵀ g` and the
/// VAR normal equations `XᵀX`, `XᵀY`.
Matrix MatMulTransA(const Matrix& a, const Matrix& b);
void MatMulTransAInto(const Matrix& a, const Matrix& b, Matrix* out);

/// Fused `a * bᵀ`; `a: m x k`, `b: n x k`, result `m x n`. Bit-identical
/// to `MatMul(a, Transpose(b))`. Backs `Linear::Backward`'s `g Wᵀ`.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);
void MatMulTransBInto(const Matrix& a, const Matrix& b, Matrix* out);

/// Transpose.
Matrix Transpose(const Matrix& a);

/// Elementwise sum / difference; shapes must match.
Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);

/// In-place elementwise `a += b` / `a -= b`; shapes must match.
void AddInPlace(const Matrix& b, Matrix* a);
void SubInPlace(const Matrix& b, Matrix* a);

/// Out-parameter `a - b`; `out` may alias `a` or `b`.
void SubInto(const Matrix& a, const Matrix& b, Matrix* out);

/// Elementwise (Hadamard) product; shapes must match.
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// Scalar multiple.
Matrix Scale(const Matrix& a, double s);
void ScaleInPlace(double s, Matrix* a);
void ScaleInto(const Matrix& a, double s, Matrix* out);

/// In-place `a += s * b`; shapes must match. The workhorse of the SGD /
/// Adam update loops.
void Axpy(double s, const Matrix& b, Matrix* a);

/// Out-parameter axpy: `out = y + s * x`; `out` may alias `x` or `y`.
void AxpyInto(double s, const Matrix& x, const Matrix& y, Matrix* out);

/// Sum of all elements.
double Sum(const Matrix& a);

/// Frobenius norm (L2 norm of the flattened matrix).
double FrobeniusNorm(const Matrix& a);

/// Dot product of the flattened matrices; shapes must match.
double FlatDot(const Matrix& a, const Matrix& b);

/// Cosine similarity of the flattened matrices, in [-1, 1]. Returns 1 when
/// both inputs are (near-)zero and 0 when exactly one is, matching the
/// convention that two silent signals are maximally similar.
double CosineSimilarity(const Matrix& a, const Matrix& b);

/// Broadcasts a `1 x c` row across all rows of `a` (adds it to each row).
Matrix AddRowBroadcast(const Matrix& a, const Matrix& row);
void AddRowBroadcastInPlace(const Matrix& row, Matrix* a);
void AddRowBroadcastInto(const Matrix& a, const Matrix& row, Matrix* out);

/// Mean over rows: returns a `1 x cols` matrix.
Matrix MeanRows(const Matrix& a);

}  // namespace streamad::linalg

#endif  // STREAMAD_LINALG_MATRIX_H_
