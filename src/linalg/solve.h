#ifndef STREAMAD_LINALG_SOLVE_H_
#define STREAMAD_LINALG_SOLVE_H_

#include "src/linalg/matrix.h"

namespace streamad::linalg {

/// Linear-system solvers backing the VAR model's least-squares estimation.
///
/// The VAR(p) estimator solves `min ||Y - X B||_F` for the stacked
/// coefficient matrix B via the normal equations `(XᵀX) B = XᵀY`. We provide
/// a Cholesky factorisation (fast path for the SPD normal-equations matrix,
/// with a ridge fallback when the Gram matrix is near-singular) and a
/// partial-pivoting LU solver used as the general-purpose fallback and as a
/// cross-check in tests.

/// Solves `A x = b` for SPD `A` via Cholesky. Returns false (and leaves
/// `*x` untouched) if `A` is not positive definite within tolerance.
/// `b` may have multiple columns; the solve is performed per column.
bool CholeskySolve(const Matrix& a, const Matrix& b, Matrix* x);

/// Solves `A x = b` via LU with partial pivoting. Returns false when `A` is
/// singular within tolerance. `b` may have multiple columns.
bool LuSolve(const Matrix& a, const Matrix& b, Matrix* x);

/// Least squares: returns `argmin_B ||y - x B||_F` by solving the ridge
/// normal equations `(XᵀX + ridge I) B = XᵀY`. `ridge >= 0`; a tiny default
/// keeps the Gram matrix well-conditioned on short windows. The Gram
/// matrix and right-hand side are formed with the fused `MatMulTransA`
/// kernel — the transpose is never materialised.
Matrix LeastSquares(const Matrix& x, const Matrix& y, double ridge = 1e-8);

/// The back half of `LeastSquares`: solves `(gram + ridge I) B = rhs` with
/// the Cholesky fast path and the LU-with-stronger-ridge fallback, without
/// forming the Gram matrix itself. Exposed so callers that maintain
/// `XᵀX` / `XᵀY` incrementally (the VAR model's rank-1 window updates)
/// share the exact solve path — and therefore the exact result — of a
/// from-scratch `LeastSquares`. `gram` is not modified.
Matrix SolveNormalEquations(const Matrix& gram, const Matrix& rhs,
                            double ridge);

}  // namespace streamad::linalg

#endif  // STREAMAD_LINALG_SOLVE_H_
