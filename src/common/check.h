#ifndef STREAMAD_COMMON_CHECK_H_
#define STREAMAD_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Precondition / invariant checking for the streamad library.
///
/// The library does not use exceptions (see DESIGN.md). Violated
/// preconditions are programming errors and abort the process with a
/// source-located message, mirroring the CHECK idiom used across large C++
/// database codebases.

/// Aborts the process with a formatted message if `cond` is false.
/// Always evaluated, also in release builds: the checks guard API contracts,
/// not internal debugging assertions.
#define STREAMAD_CHECK(cond)                                                \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "STREAMAD_CHECK failed at %s:%d: %s\n",          \
                   __FILE__, __LINE__, #cond);                              \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

/// Like STREAMAD_CHECK but with an additional explanatory message.
#define STREAMAD_CHECK_MSG(cond, msg)                                       \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "STREAMAD_CHECK failed at %s:%d: %s (%s)\n",     \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

/// Debug-only assertion for hot inner loops. Compiled out with NDEBUG.
#ifdef NDEBUG
#define STREAMAD_DCHECK(cond) \
  do {                        \
  } while (false)
#else
#define STREAMAD_DCHECK(cond) STREAMAD_CHECK(cond)
#endif

#endif  // STREAMAD_COMMON_CHECK_H_
