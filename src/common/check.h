#ifndef STREAMAD_COMMON_CHECK_H_
#define STREAMAD_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Precondition / invariant checking for the streamad library.
///
/// The library does not use exceptions (see DESIGN.md). Violated
/// preconditions are programming errors and abort the process with a
/// source-located message, mirroring the CHECK idiom used across large C++
/// database codebases.

namespace streamad::common {

/// Hook invoked (when installed) after a failed STREAMAD_CHECK prints its
/// message and before the process aborts. The observability layer installs
/// a hook that dumps every registered flight recorder, so crashes leave a
/// JSONL post-mortem of the last N pipeline steps (src/obs/flight_recorder.h).
/// The hook must be async-signal-tolerant in spirit: no throwing, no
/// reliance on the failed invariant.
using CheckFailureHook = void (*)();

/// Single process-wide hook slot (function-local static: one instance
/// across all translation units, header stays dependency-free).
inline CheckFailureHook& CheckFailureHookSlot() {
  static CheckFailureHook hook = nullptr;
  return hook;
}

/// Installs `hook` (nullptr uninstalls). Returns the previous hook.
inline CheckFailureHook SetCheckFailureHook(CheckFailureHook hook) {
  CheckFailureHook previous = CheckFailureHookSlot();
  CheckFailureHookSlot() = hook;
  return previous;
}

/// Runs the installed hook, if any. Called by the CHECK macros on failure.
inline void NotifyCheckFailure() {
  CheckFailureHook hook = CheckFailureHookSlot();
  if (hook != nullptr) hook();
}

}  // namespace streamad::common

/// Aborts the process with a formatted message if `cond` is false.
/// Always evaluated, also in release builds: the checks guard API contracts,
/// not internal debugging assertions.
#define STREAMAD_CHECK(cond)                                                \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "STREAMAD_CHECK failed at %s:%d: %s\n",          \
                   __FILE__, __LINE__, #cond);                              \
      ::streamad::common::NotifyCheckFailure();                             \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

/// Like STREAMAD_CHECK but with an additional explanatory message.
#define STREAMAD_CHECK_MSG(cond, msg)                                       \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "STREAMAD_CHECK failed at %s:%d: %s (%s)\n",     \
                   __FILE__, __LINE__, #cond, msg);                         \
      ::streamad::common::NotifyCheckFailure();                             \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

/// Debug-only assertion for hot inner loops. Compiled out with NDEBUG.
#ifdef NDEBUG
#define STREAMAD_DCHECK(cond) \
  do {                        \
  } while (false)
#else
#define STREAMAD_DCHECK(cond) STREAMAD_CHECK(cond)
#endif

#endif  // STREAMAD_COMMON_CHECK_H_
