#ifndef STREAMAD_COMMON_RNG_H_
#define STREAMAD_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>

namespace streamad {

/// Deterministic random number generator used throughout the library.
///
/// All stochastic components (reservoir sampling, anomaly-aware priorities,
/// isolation-forest splits, neural-network weight initialisation, synthetic
/// data generators) draw from an explicitly seeded `Rng` so that every
/// experiment in the repository is reproducible bit-for-bit.
class Rng {
 public:
  /// Creates a generator with the given seed. The same seed always produces
  /// the same stream of values.
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal draw scaled to `mean` / `stddev`.
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with success probability `p`.
  bool Bernoulli(double p);

  /// Access to the underlying engine for std:: distributions and shuffles.
  std::mt19937_64& engine() { return engine_; }

  /// Serialises the engine state (checkpointing): restoring it resumes
  /// the random stream exactly where it stopped.
  std::string SerializeState() const;

  /// Restores a state produced by `SerializeState`. Returns false on
  /// malformed input (the engine is left unchanged).
  bool DeserializeState(const std::string& state);

 private:
  std::mt19937_64 engine_;
};

}  // namespace streamad

#endif  // STREAMAD_COMMON_RNG_H_
