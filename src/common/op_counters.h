#ifndef STREAMAD_COMMON_OP_COUNTERS_H_
#define STREAMAD_COMMON_OP_COUNTERS_H_

#include <cstdint>

namespace streamad {

/// Instrumentation used to reproduce Table II of the paper: the number of
/// mathematical operations a concept-drift detector performs at one time
/// step, broken down into additions, multiplications and comparisons.
///
/// The drift detectors (`strategies::MuSigmaChange`, `strategies::Kswin`)
/// increment these counters alongside each arithmetic operation they perform
/// on training-set data when a non-null `OpCounters` is attached. The
/// counters are plain tallies — attaching them does not change behaviour.
struct OpCounters {
  std::uint64_t additions = 0;
  std::uint64_t multiplications = 0;
  std::uint64_t comparisons = 0;

  /// Resets all tallies to zero.
  void Reset() { additions = multiplications = comparisons = 0; }

  /// Sum of all tallies; convenient for coarse comparisons.
  std::uint64_t Total() const {
    return additions + multiplications + comparisons;
  }
};

/// Formulas from Table II of the paper, evaluated for concrete parameters.
/// `n_channels` is N, `train_size` is m and `window` is w in the paper's
/// notation. These are the *predicted* counts our measured tallies are
/// compared against in `bench/table2_drift_ops`.
struct Table2Formulas {
  static std::uint64_t MuSigmaAdditions(std::uint64_t n_channels,
                                        std::uint64_t window);
  static std::uint64_t MuSigmaMultiplications(std::uint64_t n_channels,
                                              std::uint64_t window);
  static std::uint64_t MuSigmaComparisons(std::uint64_t n_channels,
                                          std::uint64_t window);
  static std::uint64_t KswinAdditions(std::uint64_t n_channels,
                                      std::uint64_t train_size,
                                      std::uint64_t window);
  static std::uint64_t KswinMultiplications(std::uint64_t n_channels,
                                            std::uint64_t train_size,
                                            std::uint64_t window);
  static std::uint64_t KswinComparisons(std::uint64_t n_channels,
                                        std::uint64_t train_size,
                                        std::uint64_t window);
};

}  // namespace streamad

#endif  // STREAMAD_COMMON_OP_COUNTERS_H_
