#include "src/common/rng.h"

#include <sstream>

#include "src/common/check.h"

namespace streamad {

double Rng::Uniform(double lo, double hi) {
  STREAMAD_DCHECK(lo <= hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  STREAMAD_DCHECK(stddev >= 0.0);
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  STREAMAD_DCHECK(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

std::string Rng::SerializeState() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

bool Rng::DeserializeState(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 restored;
  in >> restored;
  if (!in) return false;
  engine_ = restored;
  return true;
}

bool Rng::Bernoulli(double p) {
  STREAMAD_DCHECK(p >= 0.0 && p <= 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

}  // namespace streamad
