#include "src/common/op_counters.h"

#include <cmath>

namespace streamad {

namespace {

std::uint64_t Log2Ceil(std::uint64_t x) {
  std::uint64_t bits = 0;
  std::uint64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++bits;
  }
  return bits == 0 ? 1 : bits;
}

}  // namespace

std::uint64_t Table2Formulas::MuSigmaAdditions(std::uint64_t n_channels,
                                               std::uint64_t window) {
  return 6 * n_channels * window;
}

std::uint64_t Table2Formulas::MuSigmaMultiplications(std::uint64_t n_channels,
                                                     std::uint64_t window) {
  return 2 * n_channels * window;
}

std::uint64_t Table2Formulas::MuSigmaComparisons(std::uint64_t n_channels,
                                                 std::uint64_t window) {
  return 3 * n_channels * window;
}

std::uint64_t Table2Formulas::KswinAdditions(std::uint64_t n_channels,
                                             std::uint64_t train_size,
                                             std::uint64_t window) {
  return 2 * n_channels * train_size * window;
}

std::uint64_t Table2Formulas::KswinMultiplications(std::uint64_t n_channels,
                                                   std::uint64_t train_size,
                                                   std::uint64_t window) {
  return 2 * n_channels * train_size * window;
}

std::uint64_t Table2Formulas::KswinComparisons(std::uint64_t n_channels,
                                               std::uint64_t train_size,
                                               std::uint64_t window) {
  // (1 + 4m) * N * w * log2(m * w) + N, per Table II: binary-search insertion
  // points for every element of both training sets against the concatenated
  // array dominate.
  return (1 + 4 * train_size) * n_channels * window *
             Log2Ceil(train_size * window) +
         n_channels;
}

}  // namespace streamad
