#include "src/stats/running_stats.h"

#include <cmath>

#include "src/common/check.h"

namespace streamad::stats {

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  const double v = m2_ / static_cast<double>(count_);
  return v < 0.0 ? 0.0 : v;  // clamp tiny negative values from cancellation
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Push(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Remove(double x) {
  STREAMAD_CHECK_MSG(count_ > 0, "Remove from empty RunningStats");
  if (count_ == 1) {
    Clear();
    return;
  }
  const double old_mean = mean_;
  const std::size_t new_count = count_ - 1;
  mean_ = (mean_ * static_cast<double>(count_) - x) /
          static_cast<double>(new_count);
  m2_ -= (x - old_mean) * (x - mean_);
  if (m2_ < 0.0) m2_ = 0.0;
  count_ = new_count;
}

void RunningStats::RebuildFrom(const std::vector<double>& values) {
  Clear();
  for (double v : values) Push(v);
}

void RunningStats::Clear() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

void VectorRunningStats::Push(const std::vector<double>& x) {
  STREAMAD_CHECK(x.size() == dims_.size());
  for (std::size_t i = 0; i < x.size(); ++i) dims_[i].Push(x[i]);
}

void VectorRunningStats::Remove(const std::vector<double>& x) {
  STREAMAD_CHECK(x.size() == dims_.size());
  for (std::size_t i = 0; i < x.size(); ++i) dims_[i].Remove(x[i]);
}

std::vector<double> VectorRunningStats::Mean() const {
  std::vector<double> out(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) out[i] = dims_[i].mean();
  return out;
}

std::vector<double> VectorRunningStats::Stddev() const {
  std::vector<double> out(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) out[i] = dims_[i].stddev();
  return out;
}

double VectorRunningStats::StddevNorm() const {
  double s = 0.0;
  for (const auto& d : dims_) s += d.variance();
  return std::sqrt(s);
}

void VectorRunningStats::Clear() {
  for (auto& d : dims_) d.Clear();
}

}  // namespace streamad::stats
