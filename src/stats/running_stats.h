#ifndef STREAMAD_STATS_RUNNING_STATS_H_
#define STREAMAD_STATS_RUNNING_STATS_H_

#include <cstddef>
#include <vector>

namespace streamad::stats {

/// Scalar running mean / variance with O(1) insert *and* remove.
///
/// The μ/σ-Change drift detector (paper §IV-B, Task 2) has to maintain the
/// mean and standard deviation of a training set whose membership changes by
/// at most one element per time step (insert, or replace = remove + insert).
/// Welford's algorithm supports streaming inserts; removal uses the inverse
/// update. Removal of values that were never inserted is a programming error
/// only in exact arithmetic — numerically it silently degrades, so callers
/// should periodically `RebuildFrom` when exactness matters (the drift
/// detector does this at every fine-tune).
class RunningStats {
 public:
  /// Number of values currently represented.
  std::size_t count() const { return count_; }

  /// Mean of the represented values; 0 when empty.
  double mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Population variance; 0 when fewer than 2 values.
  double variance() const;

  /// Population standard deviation.
  double stddev() const;

  /// Adds a value.
  void Push(double x);

  /// Removes a value previously added. Requires `count() > 0`.
  void Remove(double x);

  /// Resets and bulk-loads from `values` (numerically fresh).
  void RebuildFrom(const std::vector<double>& values);

  /// Resets to the empty state.
  void Clear();

  /// Raw accessors / restore hook for checkpointing (io/binary_io.h).
  double raw_m2() const { return m2_; }
  void Restore(std::size_t count, double mean, double m2) {
    count_ = count;
    mean_ = mean;
    m2_ = m2;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the mean
};

/// Vector-valued running statistics: one `RunningStats` per dimension,
/// updated in lock step. Used for the mean feature vector μ_t ∈ R^{Nw} of
/// the μ/σ-Change strategy.
class VectorRunningStats {
 public:
  VectorRunningStats() = default;

  /// Creates statistics over `dim`-dimensional vectors.
  explicit VectorRunningStats(std::size_t dim) : dims_(dim) {}

  std::size_t dim() const { return dims_.size(); }
  std::size_t count() const { return dims_.empty() ? 0 : dims_[0].count(); }

  /// Adds a vector (size must equal `dim()`).
  void Push(const std::vector<double>& x);

  /// Removes a previously added vector.
  void Remove(const std::vector<double>& x);

  /// Per-dimension mean.
  std::vector<double> Mean() const;

  /// Per-dimension population standard deviation.
  std::vector<double> Stddev() const;

  /// L2 norm of the per-dimension standard deviation vector — the scalar σ
  /// the μ/σ-Change trigger compares distances against.
  double StddevNorm() const;

  /// Resets to empty with the same dimensionality.
  void Clear();

  /// Per-dimension access for checkpointing.
  const RunningStats& dim_stats(std::size_t i) const { return dims_[i]; }
  RunningStats* mutable_dim_stats(std::size_t i) { return &dims_[i]; }

 private:
  std::vector<RunningStats> dims_;
};

}  // namespace streamad::stats

#endif  // STREAMAD_STATS_RUNNING_STATS_H_
