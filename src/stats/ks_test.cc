#include "src/stats/ks_test.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/stats/distributions.h"

namespace streamad::stats {

KsResult TwoSampleKsTest(const std::vector<double>& a,
                         const std::vector<double>& b, double alpha,
                         OpCounters* counters) {
  STREAMAD_CHECK_MSG(!a.empty() && !b.empty(), "KS test needs data");

  std::vector<double> sa = a;
  std::vector<double> sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  const double ra = static_cast<double>(sa.size());
  const double rb = static_cast<double>(sb.size());

  // Merge sweep over both sorted samples: at every distinct value the ECDF
  // difference |F_a - F_b| is a candidate for the supremum.
  double statistic = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < sa.size() && ib < sb.size()) {
    const double v = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= v) ++ia;
    while (ib < sb.size() && sb[ib] <= v) ++ib;
    const double fa = static_cast<double>(ia) / ra;
    const double fb = static_cast<double>(ib) / rb;
    statistic = std::max(statistic, std::fabs(fa - fb));
  }

  if (counters != nullptr) {
    // Tally the operation counts of the formulation the paper's Table II
    // assumes: each element of both samples is located in the concatenated
    // sorted array via binary search (log2 comparisons each), plus the ECDF
    // difference evaluations (one subtraction + two divisions per distinct
    // step, counted as additions/multiplications over all elements).
    const std::uint64_t total =
        static_cast<std::uint64_t>(sa.size() + sb.size());
    std::uint64_t log2_total = 0;
    for (std::uint64_t v = 1; v < total; v <<= 1) ++log2_total;
    counters->comparisons += total * (log2_total == 0 ? 1 : log2_total);
    counters->additions += total;         // ECDF rank differences
    counters->multiplications += total;   // rank normalisations
    counters->comparisons += total;       // supremum updates
  }

  KsResult result;
  result.statistic = statistic;
  result.threshold = KsCriticalValue(alpha) * std::sqrt((ra + rb) / (ra * rb));
  result.reject = statistic > result.threshold;
  return result;
}

}  // namespace streamad::stats
