#ifndef STREAMAD_STATS_KS_TEST_H_
#define STREAMAD_STATS_KS_TEST_H_

#include <vector>

#include "src/common/op_counters.h"

namespace streamad::stats {

/// Result of a two-sample Kolmogorov–Smirnov test.
struct KsResult {
  /// The statistic `dist = sup_x |F_a(x) - F_b(x)|` over the empirical CDFs.
  double statistic = 0.0;
  /// The threshold `c(α) * sqrt((r_a + r_b) / (r_a * r_b))` the statistic is
  /// compared against at significance level α.
  double threshold = 0.0;
  /// True iff `statistic > threshold`, i.e. the null hypothesis
  /// "same distribution" is rejected at level α.
  bool reject = false;
};

/// Two-sample Kolmogorov–Smirnov test at significance level `alpha`
/// (paper §IV-B, KSWIN). Both samples must be non-empty. The inputs are
/// copied and sorted internally; the ECDF difference is evaluated with a
/// single merge sweep.
///
/// When `counters` is non-null, the additions / multiplications /
/// comparisons the test performs are tallied there (Table II
/// instrumentation). The tallies model the binary-search-insertion
/// formulation the paper counts: every element of both samples is located in
/// the concatenated sorted array.
KsResult TwoSampleKsTest(const std::vector<double>& a,
                         const std::vector<double>& b, double alpha,
                         OpCounters* counters = nullptr);

}  // namespace streamad::stats

#endif  // STREAMAD_STATS_KS_TEST_H_
