#ifndef STREAMAD_STATS_DISTRIBUTIONS_H_
#define STREAMAD_STATS_DISTRIBUTIONS_H_

namespace streamad::stats {

/// Standard normal cumulative distribution function Φ(x).
double NormalCdf(double x);

/// Gaussian tail distribution function Q(x) = 1 - Φ(x).
///
/// This is the `Q` of the anomaly-likelihood score (paper §IV-E):
/// `f_t = 1 - Q((μ̃_t - μ_t) / σ_t)`.
double GaussianTailQ(double x);

/// Kolmogorov–Smirnov critical value factor c(α) = sqrt(ln(2/α)) for the
/// two-sample test (paper §IV-B, KSWIN).
double KsCriticalValue(double alpha);

}  // namespace streamad::stats

#endif  // STREAMAD_STATS_DISTRIBUTIONS_H_
