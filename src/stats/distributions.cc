#include "src/stats/distributions.h"

#include <cmath>

#include "src/common/check.h"

namespace streamad::stats {

double NormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double GaussianTailQ(double x) {
  return 0.5 * std::erfc(x / std::sqrt(2.0));
}

double KsCriticalValue(double alpha) {
  STREAMAD_CHECK_MSG(alpha > 0.0 && alpha < 2.0, "alpha out of range");
  return std::sqrt(std::log(2.0 / alpha));
}

}  // namespace streamad::stats
