#!/usr/bin/env python3
"""Validate a Prometheus text-format exposition (as scraped from /metrics).

Checks, line by line:
  * the exposition is non-empty and newline-terminated, with no blank
    interior lines and no tabs;
  * every comment is `# TYPE <name> <counter|gauge|histogram|summary>`
    (the exporter writes no HELP lines);
  * every sample is `name[{labels}] value` with a finite parseable value;
  * every sample's TYPE comment precedes it (histogram/summary series
    `x_bucket` / `x_sum` / `x_count` resolve to their base name).

Usage:
    check_prom_text.py FILE [--require NAME ...]

`--require NAME` asserts that a sample with that metric name is present;
repeatable. Exits non-zero on the first structural error, or if any
required name is missing.
"""

import argparse
import math
import sys


def base_name(name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="fail unless a sample with this name exists")
    args = parser.parse_args()

    with open(args.path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if not text:
        print("error: empty exposition", file=sys.stderr)
        return 1
    if not text.endswith("\n"):
        print("error: exposition does not end with a newline",
              file=sys.stderr)
        return 1

    typed: set[str] = set()
    samples: set[str] = set()
    for lineno, line in enumerate(text.split("\n")[:-1], start=1):
        where = f"{args.path}:{lineno}"
        if not line:
            print(f"{where}: blank line inside exposition", file=sys.stderr)
            return 1
        if "\t" in line:
            print(f"{where}: tab character", file=sys.stderr)
            return 1
        if line.startswith("#"):
            fields = line.split()
            if (len(fields) != 4 or fields[1] != "TYPE"
                    or fields[3] not in ("counter", "gauge", "histogram",
                                         "summary")):
                print(f"{where}: malformed TYPE comment: {line}",
                      file=sys.stderr)
                return 1
            typed.add(fields[2])
            continue
        space_at = line.rfind(" ")
        if space_at < 0:
            print(f"{where}: sample line without a value: {line}",
                  file=sys.stderr)
            return 1
        name, value = line[:space_at], line[space_at + 1:]
        try:
            parsed = float(value)
        except ValueError:
            print(f"{where}: unparseable value {value!r}", file=sys.stderr)
            return 1
        if not math.isfinite(parsed):
            print(f"{where}: non-finite value {value!r}", file=sys.stderr)
            return 1
        brace_at = name.find("{")
        if brace_at >= 0:
            if not name.endswith("}"):
                print(f"{where}: unterminated label set: {line}",
                      file=sys.stderr)
                return 1
            name = name[:brace_at]
        if name not in typed and base_name(name) not in typed:
            print(f"{where}: sample before its # TYPE line: {line}",
                  file=sys.stderr)
            return 1
        samples.add(name)

    missing = [name for name in args.require
               if name not in samples and name not in typed]
    if missing:
        print(f"error: required metrics missing: {', '.join(missing)}",
              file=sys.stderr)
        return 1
    print(f"ok: {len(samples)} sample names, {len(typed)} typed metrics")
    return 0


if __name__ == "__main__":
    sys.exit(main())
