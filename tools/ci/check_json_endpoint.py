#!/usr/bin/env python3
"""Validate a JSON endpoint body (as scraped from the fleet's live plane).

The file must parse as a single JSON document. Assertions address values
by dotted path, where each segment is an object key or a 0-based array
index: `sessions.0.anomaly_rate` is element 0 of the `sessions` array's
`anomaly_rate` member.

Usage:
    check_json_endpoint.py FILE [--require PATH ...] [--equals PATH=VALUE ...]
                                [--nonempty PATH ...]

  --require PATH     fail unless the path exists (null is allowed)
  --equals P=VALUE   fail unless the path's value equals VALUE (VALUE is
                     parsed as JSON when possible, else compared as string)
  --nonempty PATH    fail unless the path holds a non-empty array/object

Exits non-zero on parse failure or the first unmet assertion.
"""

import argparse
import json
import sys


_MISSING = object()


def resolve(doc, path: str):
    node = doc
    for segment in path.split("."):
        if isinstance(node, list):
            try:
                index = int(segment)
            except ValueError:
                return _MISSING
            if not 0 <= index < len(node):
                return _MISSING
            node = node[index]
        elif isinstance(node, dict):
            if segment not in node:
                return _MISSING
            node = node[segment]
        else:
            return _MISSING
    return node


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path")
    parser.add_argument("--require", action="append", default=[],
                        metavar="PATH")
    parser.add_argument("--equals", action="append", default=[],
                        metavar="PATH=VALUE")
    parser.add_argument("--nonempty", action="append", default=[],
                        metavar="PATH")
    args = parser.parse_args()

    with open(args.path, "r", encoding="utf-8") as handle:
        body = handle.read()
    try:
        doc = json.loads(body)
    except json.JSONDecodeError as error:
        print(f"{args.path}: not valid JSON: {error}", file=sys.stderr)
        return 1

    checks = 0
    for path in args.require:
        if resolve(doc, path) is _MISSING:
            print(f"{args.path}: missing required path {path!r}",
                  file=sys.stderr)
            return 1
        checks += 1
    for spec in args.equals:
        path, _, raw = spec.partition("=")
        if not _:
            print(f"bad --equals spec {spec!r} (want PATH=VALUE)",
                  file=sys.stderr)
            return 1
        try:
            expected = json.loads(raw)
        except json.JSONDecodeError:
            expected = raw
        actual = resolve(doc, path)
        if actual is _MISSING or actual != expected:
            shown = "<missing>" if actual is _MISSING else repr(actual)
            print(f"{args.path}: {path} is {shown}, expected "
                  f"{expected!r}", file=sys.stderr)
            return 1
        checks += 1
    for path in args.nonempty:
        value = resolve(doc, path)
        if not isinstance(value, (list, dict)) or len(value) == 0:
            print(f"{args.path}: {path} is not a non-empty array/object",
                  file=sys.stderr)
            return 1
        checks += 1

    print(f"ok: valid JSON, {checks} assertion(s) held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
