#!/bin/sh
# Verifies that the C++ files changed relative to the merge base are
# clang-format clean. Scope is deliberately "changed files only": the seed
# tree predates .clang-format, so a tree-wide gate would punish untouched
# files. Exits 0 (with a notice) when clang-format or a merge base is
# unavailable, so local builds without the tool still pass.
#
# Usage: tools/format_check.sh [base-ref]   (default: origin/main, then HEAD)
set -u

cd "$(dirname "$0")/.." || exit 1

FMT=""
for candidate in clang-format clang-format-18 clang-format-17 clang-format-16 \
                 clang-format-15 clang-format-14; do
  if command -v "$candidate" > /dev/null 2>&1; then
    FMT="$candidate"
    break
  fi
done
if [ -z "$FMT" ]; then
  echo "format-check: clang-format not found; skipping (CI installs it)"
  exit 0
fi

BASE="${1:-}"
if [ -z "$BASE" ]; then
  if git rev-parse --verify --quiet origin/main > /dev/null 2>&1; then
    BASE=$(git merge-base HEAD origin/main 2> /dev/null || true)
  fi
  # Detached/unsynced checkouts: fall back to comparing the work tree
  # against HEAD, which still catches unformatted uncommitted edits.
  [ -z "$BASE" ] && BASE=HEAD
fi

CHANGED=$(git diff --name-only --diff-filter=ACMR "$BASE" -- \
  '*.cc' '*.h' | grep -v '^tools/lint/testdata/' || true)
if [ -z "$CHANGED" ]; then
  echo "format-check: no changed C++ files vs $BASE"
  exit 0
fi

STATUS=0
for f in $CHANGED; do
  [ -f "$f" ] || continue
  if ! "$FMT" --dry-run --Werror "$f" > /dev/null 2>&1; then
    echo "format-check: $f needs clang-format"
    STATUS=1
  fi
done
if [ "$STATUS" -eq 0 ]; then
  echo "format-check: OK ($(echo "$CHANGED" | wc -l) changed files clean)"
else
  echo "format-check: run '$FMT -i <file>' on the files above"
fi
exit $STATUS
