#ifndef STREAMAD_TOOLS_INSPECT_LIVE_H_
#define STREAMAD_TOOLS_INSPECT_LIVE_H_

#include <cstdint>
#include <ostream>
#include <string>

/// \file
/// `streamad_inspect live`: poll a running fleet's HTTP observability
/// plane (`/healthz`, `/anomalies`, `/metrics`) and render per-session
/// detection quality and per-shard latency, with deltas between polls.
/// Like the rest of the inspect tool this is standalone — it speaks the
/// wire formats (JSON + Prometheus text), not the library's structs, so
/// it can watch any build of the server.

namespace streamad::inspect {

struct LiveOptions {
  std::string host = "127.0.0.1";
  /// Port of the fleet's HTTP plane; required (0 is an error).
  std::uint16_t port = 0;
  /// Rows in the top-K quality table (the `k` passed to `/anomalies`).
  std::size_t k = 10;
  /// Poll cadence; also the denominator for the ev/s column.
  std::size_t interval_ms = 2000;
  /// Render exactly one snapshot and exit (CI smoke mode).
  bool once = false;
  /// Stop after this many polls; 0 = run until interrupted. `once`
  /// overrides this to 1.
  std::size_t max_polls = 0;
};

/// Runs the live view. Returns 0 on success, 2 when the plane cannot be
/// reached or returns something unparseable (matching the CLI's
/// usage/IO/parse exit code).
int RunLive(const LiveOptions& options, std::ostream* out);

}  // namespace streamad::inspect

#endif  // STREAMAD_TOOLS_INSPECT_LIVE_H_
