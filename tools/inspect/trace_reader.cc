#include "tools/inspect/trace_reader.h"

#include <cstdlib>
#include <fstream>

namespace streamad::inspect {
namespace {

/// Recursive-descent parser over one line. Tracks a byte cursor; every
/// Parse* method leaves the cursor just past what it consumed.
class LineParser {
 public:
  explicit LineParser(std::string_view line) : line_(line) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipSpace();
    if (!ParseValue(out, error)) return false;
    SkipSpace();
    if (pos_ != line_.size()) {
      *error = "trailing characters after JSON value";
      return false;
    }
    return true;
  }

 private:
  void SkipSpace() {
    while (pos_ < line_.size() &&
           (line_[pos_] == ' ' || line_[pos_] == '\t' ||
            line_[pos_] == '\r' || line_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool Fail(std::string* error, const std::string& message) {
    *error = message + " at offset " + std::to_string(pos_);
    return false;
  }

  bool Literal(std::string_view word) {
    if (line_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue* out, std::string* error) {
    if (pos_ >= line_.size()) return Fail(error, "unexpected end of line");
    const char c = line_[pos_];
    if (c == '{') return ParseObject(out, error);
    if (c == '[') return ParseArray(out, error);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->text, error);
    }
    if (Literal("true")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      return true;
    }
    if (Literal("false")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      return true;
    }
    if (Literal("null")) {
      out->type = JsonValue::Type::kNull;
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out, error);
    return Fail(error, "unexpected character");
  }

  bool ParseObject(JsonValue* out, std::string* error) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // consume '{'
    SkipSpace();
    if (pos_ < line_.size() && line_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key, error)) return false;
      SkipSpace();
      if (pos_ >= line_.size() || line_[pos_] != ':') {
        return Fail(error, "expected ':' after object key");
      }
      ++pos_;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value, error)) return false;
      out->members.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= line_.size()) return Fail(error, "unterminated object");
      if (line_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (line_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail(error, "expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out, std::string* error) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // consume '['
    SkipSpace();
    if (pos_ < line_.size() && line_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      JsonValue element;
      if (!ParseValue(&element, error)) return false;
      out->elements.push_back(std::move(element));
      SkipSpace();
      if (pos_ >= line_.size()) return Fail(error, "unterminated array");
      if (line_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (line_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail(error, "expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out, std::string* error) {
    if (pos_ >= line_.size() || line_[pos_] != '"') {
      return Fail(error, "expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < line_.size()) {
      const char c = line_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= line_.size()) return Fail(error, "dangling escape");
        const char esc = line_[pos_];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u':
            // The observability writers never emit \u escapes; decode to a
            // placeholder rather than failing on foreign files.
            if (pos_ + 4 >= line_.size()) return Fail(error, "bad \\u escape");
            pos_ += 4;
            out->push_back('?');
            break;
          default:
            return Fail(error, "unknown escape");
        }
        ++pos_;
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return Fail(error, "unterminated string");
  }

  bool ParseNumber(JsonValue* out, std::string* error) {
    const char* begin = line_.data() + pos_;
    char* end = nullptr;
    out->number = std::strtod(begin, &end);
    if (end == begin) return Fail(error, "malformed number");
    out->type = JsonValue::Type::kNumber;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  std::string_view line_;
  std::size_t pos_ = 0;
};

double NumberOr(const JsonValue& object, std::string_view key,
                double fallback) {
  const JsonValue* value = object.Find(key);
  return value != nullptr && value->type == JsonValue::Type::kNumber
             ? value->number
             : fallback;
}

bool BoolOr(const JsonValue& object, std::string_view key, bool fallback) {
  const JsonValue* value = object.Find(key);
  return value != nullptr && value->type == JsonValue::Type::kBool
             ? value->bool_value
             : fallback;
}

std::string StringOr(const JsonValue& object, std::string_view key) {
  const JsonValue* value = object.Find(key);
  return value != nullptr && value->type == JsonValue::Type::kString
             ? value->text
             : std::string();
}

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool ParseJsonLine(std::string_view line, JsonValue* out, std::string* error) {
  LineParser parser(line);
  return parser.Parse(out, error);
}

bool ParseTraceRecord(std::string_view line, TraceRecord* out,
                      std::string* error) {
  JsonValue root;
  if (!ParseJsonLine(line, &root, error)) return false;
  if (root.type != JsonValue::Type::kObject) {
    *error = "trace line is not a JSON object";
    return false;
  }

  *out = TraceRecord();
  const std::string flight = StringOr(root, "flight");
  if (flight == "header") {
    out->kind = TraceRecord::Kind::kFlightHeader;
  } else if (flight == "step") {
    out->kind = TraceRecord::Kind::kFlightStep;
  } else {
    out->kind = TraceRecord::Kind::kTraceStep;
  }

  out->run = StringOr(root, "run");
  out->t = static_cast<std::int64_t>(NumberOr(root, "t", 0.0));
  out->scored = BoolOr(root, "scored", false);
  out->finetuned = BoolOr(root, "finetuned", false);
  out->nonconformity = NumberOr(root, "a", 0.0);
  out->anomaly_score = NumberOr(root, "f", 0.0);

  if (const JsonValue* stages = root.Find("stage_ns");
      stages != nullptr && stages->type == JsonValue::Type::kObject) {
    for (const auto& [stage, value] : stages->members) {
      if (value.type != JsonValue::Type::kNumber) continue;
      out->stage_ns.emplace_back(stage,
                                 static_cast<std::uint64_t>(value.number));
    }
  }

  if (out->kind == TraceRecord::Kind::kFlightStep) {
    out->input_min = NumberOr(root, "x_min", 0.0);
    out->input_max = NumberOr(root, "x_max", 0.0);
    out->input_mean = NumberOr(root, "x_mean", 0.0);
    out->drift_statistic = NumberOr(root, "drift_stat", 0.0);
    out->train_size = static_cast<std::uint64_t>(NumberOr(root, "train_size", 0.0));
  } else if (out->kind == TraceRecord::Kind::kFlightHeader) {
    out->reason = StringOr(root, "reason");
    out->capacity = static_cast<std::uint64_t>(NumberOr(root, "capacity", 0.0));
    out->retained = static_cast<std::uint64_t>(NumberOr(root, "retained", 0.0));
    out->total = static_cast<std::uint64_t>(NumberOr(root, "total", 0.0));
  }
  return true;
}

bool ReadTraceFile(const std::string& path, const ReadOptions& options,
                   TraceFile* out, std::string* error) {
  std::ifstream in(path);
  if (!in.is_open()) {
    *error = "cannot open " + path;
    return false;
  }
  out->path = path;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    ++out->lines_read;
    TraceRecord record;
    std::string parse_error;
    if (!ParseTraceRecord(line, &record, &parse_error)) {
      const std::string located =
          path + ":" + std::to_string(line_number) + ": " + parse_error;
      if (options.strict) {
        *error = located;
        return false;
      }
      ++out->parse_errors;
      if (out->error_samples.size() < 5) out->error_samples.push_back(located);
      continue;
    }
    if (!options.run_filter.empty() &&
        record.run.find(options.run_filter) == std::string::npos) {
      continue;
    }
    out->records.push_back(std::move(record));
  }
  return true;
}

}  // namespace streamad::inspect
