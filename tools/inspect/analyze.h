#ifndef STREAMAD_TOOLS_INSPECT_ANALYZE_H_
#define STREAMAD_TOOLS_INSPECT_ANALYZE_H_

#include <ostream>
#include <string>
#include <vector>

#include "tools/inspect/trace_reader.h"

/// \file
/// Offline analyses over decoded trace/flight files. All percentiles here
/// are *exact* (sorted-sample interpolation) — the offline tool has the
/// memory the streaming sketches don't, and doubles as their oracle.

namespace streamad::inspect {

/// Exact linear-interpolation percentile of `sorted` (ascending) at rank
/// `q * (n - 1)`, `q` in [0, 1]. Returns 0 for an empty vector.
double ExactPercentile(const std::vector<double>& sorted, double q);

/// Latency samples of one pipeline stage across the file's step records.
struct StageLatency {
  std::string stage;
  std::vector<double> sorted_ns;  // ascending

  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

/// Collects and sorts per-stage samples in canonical pipeline order
/// (stages absent from the file are omitted; unknown stage keys follow the
/// canonical ones). Flight `step` records are excluded unless
/// `include_flight` — a flight dump duplicates steps the trace may also
/// hold.
std::vector<StageLatency> CollectStageLatencies(const TraceFile& file,
                                                bool include_flight);

/// Per-stage latency percentile table. Returns the number of stage rows
/// printed (0 = no latency data in the file).
std::size_t PrintLatencyTable(const TraceFile& file, std::ostream* out);

/// Chronological fine-tune timeline (one row per finetuned step). Returns
/// the number of fine-tune events found.
std::size_t PrintFinetuneTimeline(const TraceFile& file, std::ostream* out);

/// Distribution of anomaly scores `f` and nonconformities `a` over scored
/// steps. Returns the number of scored records.
std::size_t PrintScoreDistribution(const TraceFile& file, std::ostream* out);

/// File overview: record kinds, runs, step range, scored/finetune counts,
/// parse errors. Returns the number of records.
std::size_t PrintSummary(const TraceFile& file, std::ostream* out);

/// Flight-recorder view: dump headers plus the retained steps with input
/// digest, drift statistic and training-set size. Returns the number of
/// flight records (headers + steps).
std::size_t PrintFlight(const TraceFile& file, std::ostream* out);

/// Two-run comparison: per-stage p50/p99 deltas between `before` and
/// `after`. Returns the number of stages compared (stages present in
/// either file).
std::size_t PrintDiff(const TraceFile& before, const TraceFile& after,
                      std::ostream* out);

}  // namespace streamad::inspect

#endif  // STREAMAD_TOOLS_INSPECT_ANALYZE_H_
