#include "tools/inspect/analyze.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>

namespace streamad::inspect {
namespace {

/// Pipeline order of the detector's stage taxonomy — `queue_wait` (the
/// serving layer's ingress wait, present only in fleet traces) first, then
/// the per-step pipeline. Stage keys not listed here (from future schema
/// versions) sort after these, alphabetically.
constexpr const char* kCanonicalStages[] = {
    "queue_wait", "representation", "nonconformity", "scoring",
    "train_offer", "drift_check",   "finetune",      "fit",
};

std::size_t CanonicalRank(const std::string& stage) {
  for (std::size_t i = 0; i < sizeof(kCanonicalStages) / sizeof(char*); ++i) {
    if (stage == kCanonicalStages[i]) return i;
  }
  return sizeof(kCanonicalStages) / sizeof(char*);
}

/// "1.23ms" / "45.6us" / "789ns" — human-readable nanoseconds.
std::string FormatNs(double ns) {
  char buffer[32];
  if (ns >= 1e9) {
    std::snprintf(buffer, sizeof(buffer), "%.2fs", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buffer, sizeof(buffer), "%.1fus", ns / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0fns", ns);
  }
  return buffer;
}

void PrintRow(std::ostream* out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  *out << buffer;
}

struct Distribution {
  std::vector<double> sorted;

  void Finish() { std::sort(sorted.begin(), sorted.end()); }
  double Mean() const {
    if (sorted.empty()) return 0.0;
    double sum = 0.0;
    for (const double v : sorted) sum += v;
    return sum / static_cast<double>(sorted.size());
  }
};

}  // namespace

double ExactPercentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::vector<StageLatency> CollectStageLatencies(const TraceFile& file,
                                                bool include_flight) {
  std::map<std::string, std::vector<double>> samples;
  for (const TraceRecord& record : file.records) {
    if (record.kind == TraceRecord::Kind::kFlightHeader) continue;
    if (record.kind == TraceRecord::Kind::kFlightStep && !include_flight) {
      continue;
    }
    for (const auto& [stage, ns] : record.stage_ns) {
      samples[stage].push_back(static_cast<double>(ns));
    }
  }

  std::vector<StageLatency> stages;
  stages.reserve(samples.size());
  for (auto& [stage, values] : samples) {
    StageLatency latency;
    latency.stage = stage;
    latency.sorted_ns = std::move(values);
    std::sort(latency.sorted_ns.begin(), latency.sorted_ns.end());
    latency.p50 = ExactPercentile(latency.sorted_ns, 0.5);
    latency.p90 = ExactPercentile(latency.sorted_ns, 0.9);
    latency.p99 = ExactPercentile(latency.sorted_ns, 0.99);
    latency.p999 = ExactPercentile(latency.sorted_ns, 0.999);
    latency.max = latency.sorted_ns.back();
    double sum = 0.0;
    for (const double v : latency.sorted_ns) sum += v;
    latency.mean = sum / static_cast<double>(latency.sorted_ns.size());
    stages.push_back(std::move(latency));
  }
  std::sort(stages.begin(), stages.end(),
            [](const StageLatency& a, const StageLatency& b) {
              const std::size_t ra = CanonicalRank(a.stage);
              const std::size_t rb = CanonicalRank(b.stage);
              if (ra != rb) return ra < rb;
              return a.stage < b.stage;
            });
  return stages;
}

std::size_t PrintLatencyTable(const TraceFile& file, std::ostream* out) {
  const std::vector<StageLatency> stages = CollectStageLatencies(file, false);
  PrintRow(out, "%-16s %8s %10s %10s %10s %10s %10s %10s\n", "stage", "count",
           "p50", "p90", "p99", "p99.9", "max", "mean");
  for (const StageLatency& stage : stages) {
    PrintRow(out, "%-16s %8zu %10s %10s %10s %10s %10s %10s\n",
             stage.stage.c_str(), stage.sorted_ns.size(),
             FormatNs(stage.p50).c_str(), FormatNs(stage.p90).c_str(),
             FormatNs(stage.p99).c_str(), FormatNs(stage.p999).c_str(),
             FormatNs(stage.max).c_str(), FormatNs(stage.mean).c_str());
  }
  if (stages.empty()) *out << "(no stage latency samples)\n";
  return stages.size();
}

std::size_t PrintFinetuneTimeline(const TraceFile& file, std::ostream* out) {
  PrintRow(out, "%6s %10s %-28s %12s %12s %12s %10s\n", "#", "t", "run", "a",
           "f", "finetune", "dt");
  std::size_t count = 0;
  std::int64_t previous_t = -1;
  for (const TraceRecord& record : file.records) {
    if (record.kind == TraceRecord::Kind::kFlightHeader) continue;
    if (!record.finetuned) continue;
    double finetune_ns = 0.0;
    for (const auto& [stage, ns] : record.stage_ns) {
      if (stage == "finetune") finetune_ns = static_cast<double>(ns);
    }
    char dt[24];
    if (previous_t >= 0) {
      std::snprintf(dt, sizeof(dt), "%lld",
                    static_cast<long long>(record.t - previous_t));
    } else {
      std::snprintf(dt, sizeof(dt), "-");
    }
    PrintRow(out, "%6zu %10lld %-28s %12.5g %12.5g %12s %10s\n", count,
             static_cast<long long>(record.t), record.run.c_str(),
             record.nonconformity, record.anomaly_score,
             FormatNs(finetune_ns).c_str(), dt);
    previous_t = record.t;
    ++count;
  }
  if (count == 0) *out << "(no fine-tune events)\n";
  return count;
}

std::size_t PrintScoreDistribution(const TraceFile& file, std::ostream* out) {
  Distribution scores;
  Distribution nonconformities;
  for (const TraceRecord& record : file.records) {
    if (record.kind == TraceRecord::Kind::kFlightHeader) continue;
    if (record.kind == TraceRecord::Kind::kFlightStep) continue;
    if (!record.scored) continue;
    scores.sorted.push_back(record.anomaly_score);
    nonconformities.sorted.push_back(record.nonconformity);
  }
  scores.Finish();
  nonconformities.Finish();

  PrintRow(out, "%-6s %8s %12s %12s %12s %12s %12s %12s\n", "series", "count",
           "mean", "min", "p50", "p90", "p99", "max");
  const auto print_series = [&](const char* name, const Distribution& dist) {
    if (dist.sorted.empty()) return;
    PrintRow(out, "%-6s %8zu %12.5g %12.5g %12.5g %12.5g %12.5g %12.5g\n",
             name, dist.sorted.size(), dist.Mean(), dist.sorted.front(),
             ExactPercentile(dist.sorted, 0.5),
             ExactPercentile(dist.sorted, 0.9),
             ExactPercentile(dist.sorted, 0.99), dist.sorted.back());
  };
  print_series("f", scores);
  print_series("a", nonconformities);
  if (scores.sorted.empty()) *out << "(no scored steps)\n";
  return scores.sorted.size();
}

std::size_t PrintSummary(const TraceFile& file, std::ostream* out) {
  std::size_t trace_steps = 0;
  std::size_t flight_steps = 0;
  std::size_t flight_headers = 0;
  std::size_t scored = 0;
  std::size_t finetunes = 0;
  std::int64_t t_min = 0;
  std::int64_t t_max = 0;
  bool any_t = false;
  std::map<std::string, std::size_t> runs;
  for (const TraceRecord& record : file.records) {
    switch (record.kind) {
      case TraceRecord::Kind::kTraceStep: ++trace_steps; break;
      case TraceRecord::Kind::kFlightStep: ++flight_steps; break;
      case TraceRecord::Kind::kFlightHeader: ++flight_headers; break;
    }
    if (record.kind != TraceRecord::Kind::kFlightHeader) {
      if (record.scored) ++scored;
      if (record.finetuned) ++finetunes;
      if (!any_t || record.t < t_min) t_min = record.t;
      if (!any_t || record.t > t_max) t_max = record.t;
      any_t = true;
    }
    if (!record.run.empty()) ++runs[record.run];
  }

  *out << file.path << ": " << file.records.size() << " records ("
       << trace_steps << " trace steps, " << flight_steps << " flight steps, "
       << flight_headers << " flight headers), " << file.parse_errors
       << " parse errors\n";
  if (any_t) {
    *out << "steps t=[" << t_min << ", " << t_max << "], scored " << scored
         << ", finetunes " << finetunes << "\n";
  }
  if (!runs.empty()) {
    *out << "runs (" << runs.size() << "):\n";
    for (const auto& [run, count] : runs) {
      PrintRow(out, "  %-40s %8zu\n", run.c_str(), count);
    }
  }
  for (const std::string& sample : file.error_samples) {
    *out << "parse error: " << sample << "\n";
  }
  return file.records.size();
}

std::size_t PrintFlight(const TraceFile& file, std::ostream* out) {
  std::size_t rows = 0;
  for (const TraceRecord& record : file.records) {
    if (record.kind == TraceRecord::Kind::kFlightHeader) {
      *out << "flight dump: reason=" << record.reason
           << " run=" << (record.run.empty() ? "-" : record.run)
           << " capacity=" << record.capacity
           << " retained=" << record.retained << " total=" << record.total
           << "\n";
      PrintRow(out, "%10s %2s %2s %12s %12s %12s %12s %12s %10s\n", "t", "sc",
               "ft", "f", "x_mean", "x_min", "x_max", "drift", "train");
      ++rows;
    } else if (record.kind == TraceRecord::Kind::kFlightStep) {
      PrintRow(out, "%10lld %2d %2d %12.5g %12.5g %12.5g %12.5g %12.5g %10llu\n",
               static_cast<long long>(record.t), record.scored ? 1 : 0,
               record.finetuned ? 1 : 0, record.anomaly_score,
               record.input_mean, record.input_min, record.input_max,
               record.drift_statistic,
               static_cast<unsigned long long>(record.train_size));
      ++rows;
    }
  }
  if (rows == 0) *out << "(no flight records)\n";
  return rows;
}

std::size_t PrintDiff(const TraceFile& before, const TraceFile& after,
                      std::ostream* out) {
  const std::vector<StageLatency> a = CollectStageLatencies(before, false);
  const std::vector<StageLatency> b = CollectStageLatencies(after, false);
  std::map<std::string, const StageLatency*> by_name_a;
  std::map<std::string, const StageLatency*> by_name_b;
  for (const StageLatency& s : a) by_name_a[s.stage] = &s;
  for (const StageLatency& s : b) by_name_b[s.stage] = &s;

  std::vector<std::string> stages;
  for (const StageLatency& s : a) stages.push_back(s.stage);
  for (const StageLatency& s : b) {
    if (by_name_a.find(s.stage) == by_name_a.end()) stages.push_back(s.stage);
  }
  std::sort(stages.begin(), stages.end(),
            [](const std::string& x, const std::string& y) {
              const std::size_t rx = CanonicalRank(x);
              const std::size_t ry = CanonicalRank(y);
              if (rx != ry) return rx < ry;
              return x < y;
            });

  PrintRow(out, "%-16s %10s %10s %8s %10s %10s %8s\n", "stage", "p50_a",
           "p50_b", "d_p50", "p99_a", "p99_b", "d_p99");
  const auto delta = [](double from, double to) -> std::string {
    if (from <= 0.0) return "n/a";
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "%+.1f%%",
                  (to - from) / from * 100.0);
    return buffer;
  };
  for (const std::string& stage : stages) {
    const auto ia = by_name_a.find(stage);
    const auto ib = by_name_b.find(stage);
    const double p50_a = ia != by_name_a.end() ? ia->second->p50 : 0.0;
    const double p99_a = ia != by_name_a.end() ? ia->second->p99 : 0.0;
    const double p50_b = ib != by_name_b.end() ? ib->second->p50 : 0.0;
    const double p99_b = ib != by_name_b.end() ? ib->second->p99 : 0.0;
    PrintRow(out, "%-16s %10s %10s %8s %10s %10s %8s\n", stage.c_str(),
             FormatNs(p50_a).c_str(), FormatNs(p50_b).c_str(),
             delta(p50_a, p50_b).c_str(), FormatNs(p99_a).c_str(),
             FormatNs(p99_b).c_str(), delta(p99_a, p99_b).c_str());
  }
  if (stages.empty()) *out << "(no stage latency samples in either file)\n";
  return stages.size();
}

}  // namespace streamad::inspect
