// streamad_inspect: offline analyzer for streamad observability output —
// per-step JSONL traces (obs::TraceSink) and flight-recorder dumps
// (obs::FlightRecorder). See README.md for a quickstart.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "tools/inspect/analyze.h"
#include "tools/inspect/trace_reader.h"

namespace {

constexpr const char* kUsage = R"(usage: streamad_inspect <command> [flags] <file.jsonl> [file2.jsonl]

commands:
  summary   <file>          record counts, runs, step range, parse errors
  latency   <file>          per-stage latency percentile table (p50..p99.9)
  finetunes <file>          chronological fine-tune timeline
  scores    <file>          anomaly-score / nonconformity distribution
  flight    <file>          flight-recorder dump view (input digest, drift)
  diff      <before> <after> per-stage p50/p99 latency deltas

flags:
  --run=SUBSTR   keep only records whose run label contains SUBSTR
  --strict       fail (exit 2) on the first malformed JSONL line

exit codes: 0 ok, 1 command produced an empty table, 2 usage/IO/parse error
)";

int UsageError(const std::string& message) {
  std::fprintf(stderr, "streamad_inspect: %s\n", message.c_str());
  std::fputs(kUsage, stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string command;
  std::vector<std::string> paths;
  streamad::inspect::ReadOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--run=", 0) == 0) {
      options.run_filter = arg.substr(6);
    } else if (arg == "--strict") {
      options.strict = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return UsageError("unknown flag " + arg);
    } else if (command.empty()) {
      command = arg;
    } else {
      paths.push_back(arg);
    }
  }

  if (command.empty()) return UsageError("missing command");
  const bool is_diff = command == "diff";
  const std::size_t want_files = is_diff ? 2 : 1;
  if (paths.size() != want_files) {
    return UsageError(command + " expects " + std::to_string(want_files) +
                      " file argument(s), got " + std::to_string(paths.size()));
  }

  std::vector<streamad::inspect::TraceFile> files(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::string error;
    if (!streamad::inspect::ReadTraceFile(paths[i], options, &files[i],
                                          &error)) {
      std::fprintf(stderr, "streamad_inspect: %s\n", error.c_str());
      return 2;
    }
  }

  std::size_t rows = 0;
  if (command == "summary") {
    rows = streamad::inspect::PrintSummary(files[0], &std::cout);
  } else if (command == "latency") {
    rows = streamad::inspect::PrintLatencyTable(files[0], &std::cout);
  } else if (command == "finetunes") {
    rows = streamad::inspect::PrintFinetuneTimeline(files[0], &std::cout);
    if (rows == 0) return 0;  // a run without drift events is not an error
  } else if (command == "scores") {
    rows = streamad::inspect::PrintScoreDistribution(files[0], &std::cout);
  } else if (command == "flight") {
    rows = streamad::inspect::PrintFlight(files[0], &std::cout);
  } else if (command == "diff") {
    rows = streamad::inspect::PrintDiff(files[0], files[1], &std::cout);
  } else {
    return UsageError("unknown command " + command);
  }

  for (const streamad::inspect::TraceFile& file : files) {
    if (file.parse_errors > 0) {
      std::fprintf(stderr, "streamad_inspect: %zu malformed line(s) in %s\n",
                   file.parse_errors, file.path.c_str());
    }
  }
  return rows == 0 ? 1 : 0;
}
