// streamad_inspect: offline analyzer for streamad observability output —
// per-step JSONL traces (obs::TraceSink) and flight-recorder dumps
// (obs::FlightRecorder). See README.md for a quickstart.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "tools/inspect/analyze.h"
#include "tools/inspect/live.h"
#include "tools/inspect/trace_reader.h"

namespace {

constexpr const char* kUsage = R"(usage: streamad_inspect <command> [flags] <file.jsonl> [file2.jsonl]

commands:
  summary   <file>          record counts, runs, step range, parse errors
  latency   <file>          per-stage latency percentile table (p50..p99.9)
  finetunes <file>          chronological fine-tune timeline
  scores    <file>          anomaly-score / nonconformity distribution
  flight    <file>          flight-recorder dump view (input digest, drift)
  diff      <before> <after> per-stage p50/p99 latency deltas
  live                      poll a running fleet's HTTP plane and render
                            per-session quality / latency deltas

flags:
  --run=SUBSTR   keep only records whose run label contains SUBSTR
  --strict       fail (exit 2) on the first malformed JSONL line

live flags:
  --port=N         fleet HTTP plane port (required)
  --host=ADDR      IPv4 literal, default 127.0.0.1
  --k=N            rows in the top-K quality table, default 10
  --interval-ms=N  poll cadence, default 2000
  --polls=N        stop after N polls (0 = until interrupted)
  --once           one snapshot and exit (CI smoke mode)

exit codes: 0 ok, 1 command produced an empty table, 2 usage/IO/parse error
)";

int UsageError(const std::string& message) {
  std::fprintf(stderr, "streamad_inspect: %s\n", message.c_str());
  std::fputs(kUsage, stderr);
  return 2;
}

}  // namespace

int ParsePositive(const std::string& value, std::size_t* out) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || end == nullptr || *end != '\0') return 1;
  *out = static_cast<std::size_t>(parsed);
  return 0;
}

int RunLiveCommand(int argc, char** argv) {
  streamad::inspect::LiveOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "live") continue;
    std::size_t value = 0;
    if (arg.rfind("--port=", 0) == 0) {
      if (ParsePositive(arg.substr(7), &value) != 0 || value == 0 ||
          value > 65535) {
        return UsageError("bad --port value in " + arg);
      }
      options.port = static_cast<std::uint16_t>(value);
    } else if (arg.rfind("--host=", 0) == 0) {
      options.host = arg.substr(7);
    } else if (arg.rfind("--k=", 0) == 0) {
      if (ParsePositive(arg.substr(4), &value) != 0 || value == 0) {
        return UsageError("bad --k value in " + arg);
      }
      options.k = value;
    } else if (arg.rfind("--interval-ms=", 0) == 0) {
      if (ParsePositive(arg.substr(14), &value) != 0) {
        return UsageError("bad --interval-ms value in " + arg);
      }
      options.interval_ms = value;
    } else if (arg.rfind("--polls=", 0) == 0) {
      if (ParsePositive(arg.substr(8), &value) != 0) {
        return UsageError("bad --polls value in " + arg);
      }
      options.max_polls = value;
    } else if (arg == "--once") {
      options.once = true;
    } else {
      return UsageError("unknown live argument " + arg);
    }
  }
  if (options.port == 0) return UsageError("live requires --port=N");
  return streamad::inspect::RunLive(options, &std::cout);
}

int main(int argc, char** argv) {
  std::string command;
  std::vector<std::string> paths;
  streamad::inspect::ReadOptions options;

  // `live` speaks its own flag set (host/port/cadence), so dispatch it
  // before the file-oriented flag loop below.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") break;
    if (!arg.empty() && arg[0] == '-') continue;
    if (arg == "live") return RunLiveCommand(argc, argv);
    break;  // first positional argument is the command
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--run=", 0) == 0) {
      options.run_filter = arg.substr(6);
    } else if (arg == "--strict") {
      options.strict = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return UsageError("unknown flag " + arg);
    } else if (command.empty()) {
      command = arg;
    } else {
      paths.push_back(arg);
    }
  }

  if (command.empty()) return UsageError("missing command");
  const bool is_diff = command == "diff";
  const std::size_t want_files = is_diff ? 2 : 1;
  if (paths.size() != want_files) {
    return UsageError(command + " expects " + std::to_string(want_files) +
                      " file argument(s), got " + std::to_string(paths.size()));
  }

  std::vector<streamad::inspect::TraceFile> files(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::string error;
    if (!streamad::inspect::ReadTraceFile(paths[i], options, &files[i],
                                          &error)) {
      std::fprintf(stderr, "streamad_inspect: %s\n", error.c_str());
      return 2;
    }
  }

  std::size_t rows = 0;
  if (command == "summary") {
    rows = streamad::inspect::PrintSummary(files[0], &std::cout);
  } else if (command == "latency") {
    rows = streamad::inspect::PrintLatencyTable(files[0], &std::cout);
  } else if (command == "finetunes") {
    rows = streamad::inspect::PrintFinetuneTimeline(files[0], &std::cout);
    if (rows == 0) return 0;  // a run without drift events is not an error
  } else if (command == "scores") {
    rows = streamad::inspect::PrintScoreDistribution(files[0], &std::cout);
  } else if (command == "flight") {
    rows = streamad::inspect::PrintFlight(files[0], &std::cout);
  } else if (command == "diff") {
    rows = streamad::inspect::PrintDiff(files[0], files[1], &std::cout);
  } else {
    return UsageError("unknown command " + command);
  }

  for (const streamad::inspect::TraceFile& file : files) {
    if (file.parse_errors > 0) {
      std::fprintf(stderr, "streamad_inspect: %zu malformed line(s) in %s\n",
                   file.parse_errors, file.path.c_str());
    }
  }
  return rows == 0 ? 1 : 0;
}
