#ifndef STREAMAD_TOOLS_INSPECT_TRACE_READER_H_
#define STREAMAD_TOOLS_INSPECT_TRACE_READER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file
/// JSONL reader for the streamad observability outputs: per-step trace
/// records written by `obs::TraceSink` and flight-recorder dumps written
/// by `obs::FlightRecorder`. Standalone on purpose — the analyzer must
/// open traces from any build of the library, so it parses the format,
/// not the structs.

namespace streamad::inspect {

/// Minimal JSON value for the subset the observability layer emits:
/// objects, arrays, strings, numbers, bools and null.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string text;
  std::vector<std::pair<std::string, JsonValue>> members;
  /// Array elements, in order (arrays only).
  std::vector<JsonValue> elements;

  /// First member named `key`, or nullptr (objects only).
  const JsonValue* Find(std::string_view key) const;
};

/// Parses one JSONL line (a single object or array; surrounding
/// whitespace tolerated). Returns false and fills `error` on malformed
/// input or trailing garbage.
bool ParseJsonLine(std::string_view line, JsonValue* out, std::string* error);

/// One decoded record of a trace or flight file.
struct TraceRecord {
  enum class Kind {
    kTraceStep,     // obs::TraceSink per-step record
    kFlightHeader,  // {"flight":"header",...}
    kFlightStep,    // {"flight":"step",...}
  };
  Kind kind = Kind::kTraceStep;

  std::string run;
  std::int64_t t = 0;
  bool scored = false;
  bool finetuned = false;
  double nonconformity = 0.0;   // "a", valid when scored
  double anomaly_score = 0.0;   // "f", valid when scored
  /// Stage wall-clock of the step, insertion-ordered as emitted.
  std::vector<std::pair<std::string, std::uint64_t>> stage_ns;

  /// Flight-step extras (input digest + drift state).
  double input_min = 0.0;
  double input_max = 0.0;
  double input_mean = 0.0;
  double drift_statistic = 0.0;
  std::uint64_t train_size = 0;

  /// Flight-header extras.
  std::string reason;
  std::uint64_t capacity = 0;
  std::uint64_t retained = 0;
  std::uint64_t total = 0;
};

/// Decodes one line into a record. Lines that parse as JSON but lack the
/// expected fields decode to a best-effort record (missing fields keep
/// their defaults); only malformed JSON fails.
bool ParseTraceRecord(std::string_view line, TraceRecord* out,
                      std::string* error);

struct ReadOptions {
  /// Keep only records whose run label contains this substring (empty =
  /// keep everything, including unlabeled records).
  std::string run_filter;
  /// Abort on the first malformed line instead of skipping it.
  bool strict = false;
};

struct TraceFile {
  std::string path;
  std::vector<TraceRecord> records;
  std::size_t lines_read = 0;
  std::size_t parse_errors = 0;
  /// First few parse-error messages (file:line prefixed).
  std::vector<std::string> error_samples;
};

/// Reads a whole JSONL file. Returns false (with `error`) when the file
/// cannot be opened, or on the first malformed line under
/// `options.strict`. Blank lines are ignored.
bool ReadTraceFile(const std::string& path, const ReadOptions& options,
                   TraceFile* out, std::string* error);

}  // namespace streamad::inspect

#endif  // STREAMAD_TOOLS_INSPECT_TRACE_READER_H_
