#include "tools/inspect/live.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "tools/inspect/trace_reader.h"

namespace streamad::inspect {
namespace {

/// One blocking HTTP/1.0 GET against the loopback plane. Reads to EOF
/// (the server always closes), splits the status line and body. Returns
/// false with `error` on connect/IO trouble or an unparseable response.
bool HttpGet(const std::string& host, std::uint16_t port,
             const std::string& target, int* status, std::string* body,
             std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    *error = "bad host address '" + host + "' (expected an IPv4 literal)";
    return false;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    *error = "connect " + host + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return false;
  }
  const std::string request =
      "GET " + target + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      *error = std::string("send: ") + std::strerror(errno);
      ::close(fd);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    raw.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    *error = "malformed HTTP response for " + target;
    return false;
  }
  // Status line: HTTP/1.0 SP code SP reason.
  const std::size_t code_at = raw.find(' ');
  if (code_at == std::string::npos || code_at + 4 > header_end) {
    *error = "malformed status line for " + target;
    return false;
  }
  *status = std::atoi(raw.c_str() + code_at + 1);
  *body = raw.substr(header_end + 4);
  return true;
}

/// Fetches `target` and parses the JSON body. 200 only.
bool FetchJson(const LiveOptions& options, const std::string& target,
               JsonValue* out, std::string* error) {
  int status = 0;
  std::string body;
  if (!HttpGet(options.host, options.port, target, &status, &body, error)) {
    return false;
  }
  if (status != 200) {
    *error = target + " returned HTTP " + std::to_string(status);
    return false;
  }
  if (!ParseJsonLine(body, out, error)) {
    *error = target + ": " + *error;
    return false;
  }
  return true;
}

double NumberOr(const JsonValue& object, const char* key, double fallback) {
  const JsonValue* value = object.Find(key);
  return value != nullptr && value->type == JsonValue::Type::kNumber
             ? value->number
             : fallback;
}

std::string StringOr(const JsonValue& object, const char* key) {
  const JsonValue* value = object.Find(key);
  return value != nullptr && value->type == JsonValue::Type::kString
             ? value->text
             : std::string();
}

/// Pulls one sample value out of a Prometheus text exposition: the line
/// starting with `series` (name + optional label set, e.g.
/// `foo_summary{quantile="0.99"}`) followed by a space. NaN when absent.
double PromValue(const std::string& text, const std::string& series) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    if (text.compare(pos, series.size(), series) == 0 &&
        pos + series.size() < end && text[pos + series.size()] == ' ') {
      return std::atof(text.c_str() + pos + series.size() + 1);
    }
    pos = end + 1;
  }
  return std::nan("");
}

void AppendF(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));
void AppendF(std::string* out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  out->append(buffer);
}

struct SessionPrev {
  double anomaly_rate = 0.0;
  double drift = 0.0;
  double processed = 0.0;
  bool seen = false;
};

}  // namespace

int RunLive(const LiveOptions& options, std::ostream* out) {
  if (options.port == 0) {
    *out << "live: --port is required (the fleet's HTTP plane)\n";
    return 2;
  }
  const std::size_t polls =
      options.once ? 1 : (options.max_polls == 0 ? static_cast<std::size_t>(-1)
                                                 : options.max_polls);
  std::map<std::string, SessionPrev> previous;
  std::map<std::size_t, double> prev_shard_p99;

  for (std::size_t poll = 0; poll < polls; ++poll) {
    if (poll > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.interval_ms));
    }
    std::string error;
    JsonValue health;
    // /healthz answers 503 while degraded — still a valid, renderable
    // snapshot, so accept it alongside 200.
    {
      int status = 0;
      std::string body;
      if (!HttpGet(options.host, options.port, "/healthz", &status, &body,
                   &error) ||
          (status != 200 && status != 503) ||
          !ParseJsonLine(body, &health, &error)) {
        *out << "live: /healthz unreachable or malformed: " << error << "\n";
        return 2;
      }
    }
    JsonValue anomalies;
    if (!FetchJson(options,
                   "/anomalies?k=" + std::to_string(options.k) + "&by=rate",
                   &anomalies, &error)) {
      *out << "live: " << error << "\n";
      return 2;
    }

    // /metrics is optional (404 on registry-less fleets): latency columns
    // just go blank.
    std::string metrics_text;
    {
      int status = 0;
      std::string body;
      std::string metrics_error;
      if (HttpGet(options.host, options.port, "/metrics", &status, &body,
                  &metrics_error) &&
          status == 200) {
        metrics_text = body;
      }
    }

    std::string view;
    view.reserve(2048);
    const std::string fleet_status = StringOr(health, "status");
    AppendF(&view, "fleet %s", fleet_status.empty() ? "?" : fleet_status.c_str());
    const JsonValue* shards = health.Find("shards");
    std::size_t stalled = 0;
    std::size_t shard_count = 0;
    if (shards != nullptr && shards->type == JsonValue::Type::kArray) {
      shard_count = shards->elements.size();
      for (const JsonValue& shard : shards->elements) {
        const JsonValue* flag = shard.Find("stalled");
        if (flag != nullptr && flag->type == JsonValue::Type::kBool &&
            flag->bool_value) {
          ++stalled;
        }
      }
    }
    AppendF(&view, " | shards %zu (%zu stalled)", shard_count, stalled);
    AppendF(&view, " | sessions with analytics %.0f\n",
            NumberOr(anomalies, "total_sessions", 0.0));

    if (shard_count > 0) {
      view += "  shard  depth  processed";
      if (!metrics_text.empty()) view += "  step_p99_us  Δstep_p99_us";
      view += '\n';
      for (const JsonValue& shard : shards->elements) {
        const std::size_t index =
            static_cast<std::size_t>(NumberOr(shard, "index", 0.0));
        AppendF(&view, "  %5zu  %5.0f  %9.0f",
                index, NumberOr(shard, "queue_depth", 0.0),
                NumberOr(shard, "processed", 0.0));
        if (!metrics_text.empty()) {
          const double p99_ns = PromValue(
              metrics_text, "streamad_serve_shard" + std::to_string(index) +
                                "_step_ns_summary{quantile=\"0.99\"}");
          if (!std::isnan(p99_ns)) {
            const double p99_us = p99_ns / 1000.0;
            const auto prev = prev_shard_p99.find(index);
            AppendF(&view, "  %11.1f", p99_us);
            if (prev != prev_shard_p99.end()) {
              AppendF(&view, "  %+12.1f", p99_us - prev->second);
            }
            prev_shard_p99[index] = p99_us;
          }
        }
        view += '\n';
      }
    }

    const JsonValue* sessions = anomalies.Find("sessions");
    if (sessions != nullptr && sessions->type == JsonValue::Type::kArray &&
        !sessions->elements.empty()) {
      view +=
          "  session            rate     Δrate    drift    Δdrift"
          "  anomalies  score_p99     ev/s\n";
      const double interval_s =
          static_cast<double>(options.interval_ms) / 1000.0;
      for (const JsonValue& session : sessions->elements) {
        const std::string id = StringOr(session, "id");
        const double rate = NumberOr(session, "anomaly_rate", 0.0);
        const double drift = NumberOr(session, "drift_statistic", 0.0);
        const double processed = NumberOr(session, "processed", 0.0);
        SessionPrev& prev = previous[id];
        const double d_rate = prev.seen ? rate - prev.anomaly_rate : 0.0;
        const double d_drift = prev.seen ? drift - prev.drift : 0.0;
        const double rate_events =
            prev.seen && interval_s > 0.0
                ? (processed - prev.processed) / interval_s
                : 0.0;
        AppendF(&view,
                "  %-16s  %6.4f  %+7.4f  %7.3f  %+7.3f  %9.0f  %9.4g  %7.0f\n",
                id.c_str(), rate, d_rate, drift, d_drift,
                NumberOr(session, "anomalies", 0.0),
                NumberOr(session, "score_p99", 0.0), rate_events);
        prev.anomaly_rate = rate;
        prev.drift = drift;
        prev.processed = processed;
        prev.seen = true;
      }
    } else {
      view +=
          "  (no sessions carry analytics — enable "
          "FleetOptions::session_analytics)\n";
    }
    *out << view;
    out->flush();
  }
  return 0;
}

}  // namespace streamad::inspect
