#include "tools/lint/lexer.h"

#include <array>
#include <cctype>
#include <cstddef>

namespace streamad::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character operators, longest first so maximal munch is a plain
// prefix scan. Three-char forms first, then two-char, then any single char.
constexpr std::array<std::string_view, 21> kOps3 = {
    "<<=", ">>=", "...", "->*", "<=>",
    // two-char operators padded into the same scan by order below
    "::", "->", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "++", "--", "+=", "-=", "*=", "/="};

class Lexer {
 public:
  Lexer(std::string path, std::string_view src)
      : src_(src) {
    out_.path = std::move(path);
  }

  SourceFile Run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        LexPpDirective();
        continue;
      }
      at_line_start_ = false;
      if (c == '"') {
        LexString();
        continue;
      }
      if (c == '\'') {
        LexChar();
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdentOrRawString();
        continue;
      }
      if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        LexNumber();
        continue;
      }
      LexPunct();
    }
    return std::move(out_);
  }

 private:
  char Peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Emit(std::vector<Token>* stream, TokKind kind, std::size_t begin,
            int line) {
    stream->push_back(
        Token{kind, std::string(src_.substr(begin, pos_ - begin)), line});
  }

  void LexLineComment() {
    const std::size_t begin = pos_;
    const int begin_line = line_;
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      // Phase-2 line splicing happens before comment removal: a `//`
      // comment whose last character is a backslash swallows the next
      // physical line too. Without this, the spliced line's text leaks
      // into the code stream and rules fire on commented-out prose.
      if (src_[pos_] == '\\' &&
          (Peek(1) == '\n' || (Peek(1) == '\r' && Peek(2) == '\n'))) {
        pos_ += Peek(1) == '\r' ? 3 : 2;
        ++line_;
        continue;
      }
      ++pos_;
    }
    Emit(&out_.comments, TokKind::kComment, begin, begin_line);
  }

  void LexBlockComment() {
    const std::size_t begin = pos_;
    const int begin_line = line_;
    pos_ += 2;
    while (pos_ < src_.size() &&
           !(src_[pos_] == '*' && Peek(1) == '/')) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ < src_.size()) pos_ += 2;  // consume `*/`
    Emit(&out_.comments, TokKind::kComment, begin, begin_line);
  }

  void LexPpDirective() {
    const std::size_t begin = pos_;
    const int begin_line = line_;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && Peek(1) == '\n') {
        pos_ += 2;
        ++line_;
        continue;
      }
      // A trailing // comment on the directive line ends the directive
      // text; the comment is lexed separately so NOLINT still works on
      // include lines.
      if (src_[pos_] == '/' && (Peek(1) == '/' || Peek(1) == '*')) break;
      if (src_[pos_] == '\n') break;
      ++pos_;
    }
    Emit(&out_.pp, TokKind::kPpDirective, begin, begin_line);
    at_line_start_ = false;
  }

  void LexString() {
    const std::size_t begin = pos_;
    const int begin_line = line_;
    ++pos_;  // opening quote
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;  // closing quote
    Emit(&out_.code, TokKind::kString, begin, begin_line);
  }

  /// Lexes `R"delim(...)delim"` starting at the opening quote, with the
  /// token beginning at `begin` (so encoding prefixes like `u8R` stay part
  /// of the string token). Raw-string bodies are the one place where `"`
  /// and `\` carry no meaning, so nothing here may leak into the code
  /// stream — a body containing `srand(` or `.lock()` must stay opaque.
  void LexRawString(std::size_t begin, int begin_line) {
    ++pos_;  // opening quote
    // d-char sequence: at most 16 chars, none of space/()/backslash.
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(' &&
           delim.size() <= 16) {
      const char c = src_[pos_];
      if (c == ')' || c == '\\' || c == '"' || c == '\n' ||
          std::isspace(static_cast<unsigned char>(c))) {
        break;  // not a valid raw string after all; bail at the paren scan
      }
      delim += c;
      ++pos_;
    }
    const std::string closer = ")" + delim + "\"";
    while (pos_ < src_.size() &&
           src_.substr(pos_, closer.size()) != closer) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ < src_.size()) pos_ += closer.size();
    Emit(&out_.code, TokKind::kString, begin, begin_line);
  }

  void LexChar() {
    const std::size_t begin = pos_;
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;
    Emit(&out_.code, TokKind::kChar, begin, line_);
  }

  void LexIdentOrRawString() {
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) ++pos_;
    // The standard raw-string prefixes (`R`, `u8R`, `uR`, `LR`, `UR`)
    // followed by a quote start a raw string; any other identifier before
    // a quote is an ordinary token (e.g. a macro name) and the string is
    // lexed separately.
    if (pos_ < src_.size() && src_[pos_] == '"') {
      const std::string_view ident = src_.substr(begin, pos_ - begin);
      if (ident == "R" || ident == "u8R" || ident == "uR" ||
          ident == "LR" || ident == "UR") {
        LexRawString(begin, line_);
        return;
      }
    }
    Emit(&out_.code, TokKind::kIdent, begin, line_);
  }

  void LexNumber() {
    // pp-number: digits, letters, dots, digit separators, and exponent
    // signs when preceded by e/E/p/P. This swallows suffixes (1.0f, 10UL)
    // into one token, which is what the float-literal check wants.
    const std::size_t begin = pos_;
    ++pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      // A digit separator is only part of the number when flanked by
      // digit/identifier characters (`1'000'000`, `0xFF'00`); a bare
      // trailing apostrophe belongs to whatever comes next.
      if (c == '\'' && IsIdentChar(Peek(1))) {
        pos_ += 2;
        continue;
      }
      if (IsIdentChar(c) || c == '.') {
        ++pos_;
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    Emit(&out_.code, TokKind::kNumber, begin, line_);
  }

  void LexPunct() {
    const std::size_t begin = pos_;
    for (std::string_view op : kOps3) {
      if (src_.substr(pos_, op.size()) == op) {
        pos_ += op.size();
        Emit(&out_.code, TokKind::kPunct, begin, line_);
        return;
      }
    }
    ++pos_;
    Emit(&out_.code, TokKind::kPunct, begin, line_);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  SourceFile out_;
};

}  // namespace

SourceFile LexFile(std::string path, std::string_view source) {
  return Lexer(std::move(path), source).Run();
}

bool IsFloatLiteral(std::string_view t) {
  if (t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
    // Hex: float only if it has a binary exponent (0x1.8p3).
    return t.find('p') != std::string_view::npos ||
           t.find('P') != std::string_view::npos;
  }
  if (t.find('.') != std::string_view::npos) return true;
  if (t.find('e') != std::string_view::npos ||
      t.find('E') != std::string_view::npos) {
    return true;
  }
  // 1f / 3F style (rare but legal via user suffix? keep simple: digits+f).
  return !t.empty() && (t.back() == 'f' || t.back() == 'F');
}

}  // namespace streamad::lint
