// Fixture: the other half of the R5 lock-order cycle (see
// lock_order_cycle_a.cc) — order_b acquired first, then order_a.
#include <mutex>

namespace streamad {

std::mutex order_a;
std::mutex order_b;

void ReverseOrder() {
  std::lock_guard<std::mutex> lb(order_b);
  std::lock_guard<std::mutex> la(order_a);
}

}  // namespace streamad
