// Fixture: every header-hygiene violation. Linted under the fake path
// src/util/header_guard_bad.h, so the expected guard is
// STREAMAD_UTIL_HEADER_GUARD_BAD_H_.
#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

#include <iostream>

using namespace std;

namespace streamad {
inline void Shout() { cout << "hi\n"; }
}  // namespace streamad

#endif  // WRONG_GUARD_NAME_H
