// Fixture: phase-2 line splicing. The comment below ends in a backslash,
// so the next physical line is part of the comment — its srand/time text
// must never reach the code stream.
namespace streamad {

// this comment swallows the next line via a trailing backslash \
srand(1); time(nullptr); std::random_device dev;

int ExactlyOneRealFinding() { return rand(); }

}  // namespace streamad
