// Fixture: a file that violates nothing — the analyzer must stay silent.
#include <cmath>
#include <vector>

namespace streamad {

struct Mat {};
void MatMulInto(const Mat& a, const Mat& b, Mat* out);

class Accumulator {
 public:
  // STREAMAD_HOT: allocation-free by construction
  void Step(const Mat& a, const Mat& b) {
    MatMulInto(a, b, &scratch_);
    total_ += 1.0;
  }

  bool Converged(double prev) const {
    return std::abs(total_ - prev) < 1e-9;
  }

 private:
  Mat scratch_;
  double total_ = 0.0;
};

}  // namespace streamad
