// Fixture: a fully conforming header. Linted under the fake path
// src/util/header_guard_good.h.
#ifndef STREAMAD_UTIL_HEADER_GUARD_GOOD_H_
#define STREAMAD_UTIL_HEADER_GUARD_GOOD_H_

#include <ostream>

namespace streamad {
inline void Whisper(std::ostream& os) { os << "hi\n"; }
}  // namespace streamad

#endif  // STREAMAD_UTIL_HEADER_GUARD_GOOD_H_
