// Fixture: a fully conforming header. Linted under the fake path
// src/linalg/header_guard_good.h.
#ifndef STREAMAD_LINALG_HEADER_GUARD_GOOD_H_
#define STREAMAD_LINALG_HEADER_GUARD_GOOD_H_

#include <ostream>

namespace streamad {
inline void Whisper(std::ostream& os) { os << "hi\n"; }
}  // namespace streamad

#endif  // STREAMAD_LINALG_HEADER_GUARD_GOOD_H_
