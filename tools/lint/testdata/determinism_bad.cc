// Fixture: every banned entropy/clock source in one file. Linted under the
// fake path src/core/determinism_bad.cc, where the determinism rule applies.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace streamad {

int BadSeed() {
  srand(42);                                     // finding: srand
  return rand();                                 // finding: rand
}

long BadClock() {
  return time(nullptr);                          // finding: time
}

unsigned BadEntropy() {
  std::random_device rd;                         // finding: random_device
  return rd();
}

long BadNow() {
  const auto t = std::chrono::steady_clock::now();  // finding: ::now(
  return t.time_since_epoch().count();
}

// Not findings: member calls and non-std qualified names.
struct Clock;

long FineMemberCalls(const Clock& c, const Clock* p) {
  return c.time() + p->rand() + fake_os::time(nullptr);
}

}  // namespace streamad
