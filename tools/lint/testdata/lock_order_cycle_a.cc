// Fixture: one half of an R5 lock-order cycle. This TU nests order_a
// before order_b; lock_order_cycle_b.cc nests them the other way round.
// Either file alone is consistent — only the tree-wide merge sees the
// inversion.
#include <mutex>

namespace streamad {

std::mutex order_a;
std::mutex order_b;

void ForwardOrder() {
  std::lock_guard<std::mutex> la(order_a);
  std::lock_guard<std::mutex> lb(order_b);
}

}  // namespace streamad
