// Fixture: entropy sources that are legal in the allowlisted locations.
// The test lints this file as src/common/rng.cc and src/obs/wallclock.cc
// (zero findings both times) and as src/core/seed.cc (findings).
#include <chrono>
#include <random>

namespace streamad {

unsigned SeedFromHardware() {
  std::random_device rd;
  return rd();
}

long WallClockNs() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace streamad
