// Fixture: R5 naked-lock. Direct .lock()/.unlock()/.try_lock() on a
// declared mutex fires; the same calls on a guard object (unique_lock)
// are RAII-managed and stay silent.
#include <mutex>

namespace streamad {

std::mutex state_mutex;
std::timed_mutex io_mutex;

void Bad() {
  state_mutex.lock();
  state_mutex.unlock();
  if (io_mutex.try_lock()) {
    io_mutex.unlock();
  }
}

void Good() {
  std::lock_guard<std::mutex> guard(state_mutex);
  std::unique_lock<std::timed_mutex> lk(io_mutex, std::defer_lock);
  lk.lock();
  lk.unlock();
}

}  // namespace streamad
