// Fixture: the flight recorder's dump-timestamp idiom — a system_clock
// read converted to unix milliseconds. Legal under src/obs/ (the dump
// header records when the post-mortem was written); a determinism finding
// anywhere else in src/.
#include <chrono>
#include <cstdint>

namespace streamad {

std::int64_t DumpUnixMillis() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace streamad
