// Fixture: the score-analytics hot-path shape — a per-step quality
// update inside a STREAMAD_HOT region. The Bad variant commits the
// allocation mistakes the real obs::ScoreAnalytics::OnStep is linted
// against; the Good variant mirrors the real implementation (everything
// preallocated at construction, the step writes into rings in place).
#include <cstdint>
#include <memory>
#include <vector>

namespace streamad {

struct LogEntry {
  std::int64_t t = 0;
  double score = 0.0;
};

struct StepSample {
  std::int64_t t = 0;
  bool flagged = false;
  double score = 0.0;
};

class BadAnalytics {
 public:
  // STREAMAD_HOT: fixture per-step analytics update
  bool OnStep(const StepSample& step) {
    std::vector<LogEntry> batch;
    batch.push_back({step.t, step.score});      // finding: growth on local
    batch.resize(8);                            // finding: growth on local
    auto boxed = std::make_unique<LogEntry>();  // finding: make_unique
    double* scratch = new double[4];            // finding: new
    scratch[0] = step.score;
    const bool flagged = step.flagged;
    delete[] scratch;
    (void)boxed;
    return flagged;
  }
};

class GoodAnalytics {
 public:
  // STREAMAD_HOT: fixture per-step analytics update, allocation-free
  bool OnStep(const StepSample& step) {
    // In-place ring writes on preallocated members: nothing below may be
    // flagged — this is the exact shape the real OnStep uses.
    rate_ring_[rate_cursor_] = step.flagged ? 1 : 0;
    rate_cursor_ = (rate_cursor_ + 1) % rate_ring_.size();
    if (step.flagged) {
      log_[log_cursor_].t = step.t;
      log_[log_cursor_].score = step.score;
      log_cursor_ = (log_cursor_ + 1) % log_.size();
    }
    total_ += 1;
    return step.flagged;
  }

  // Cold setup: growth is fine outside the hot region.
  void Prepare(std::size_t window, std::size_t capacity) {
    rate_ring_.assign(window, 0);
    log_.resize(capacity);
  }

 private:
  std::vector<std::uint8_t> rate_ring_;
  std::size_t rate_cursor_ = 0;
  std::vector<LogEntry> log_;
  std::size_t log_cursor_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace streamad
