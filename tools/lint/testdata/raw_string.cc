// Fixture: raw string literals must be opaque to every rule. Each body
// below contains text that would fire R1/R3/R5 if it leaked into the
// code stream, including a `)"` decoy inside a delimited raw string.
#include <string>

namespace streamad {

const char* kPlain = R"(srand(42); time(nullptr); x == 0.5)";
const char* kDelimited = R"delim(mu_.lock(); rand(); a != 1.0; )" still inside)delim";
const char* kUtf8 = u8R"(std::random_device entropy;)";
const wchar_t* kWide = LR"(clock::now() and socket(AF_INET, 0, 0))";

// The lexer must resume cleanly after the raw strings: exactly this one
// real violation may fire, and nothing from the literals above.
int StillLexedCorrectly() { return srand(7), 0; }

}  // namespace streamad
