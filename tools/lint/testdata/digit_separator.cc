// Fixture: digit separators stay inside the number token. A naive lexer
// reads `1'000'000` as number + char-literal + number, desynchronizing
// everything after it; the `== 0.5` below must then fire exactly once.
namespace streamad {

bool ExactCompareAfterSeparators(double x) {
  const long big = 1'000'000;
  const double f = 12'345.678'9;
  const unsigned mask = 0xFF'FF;
  return x == 0.5 && big > 0 && f > 0.0 && mask > 0u;
}

bool ToleranceIsStillFine(double x) {
  // Plain relational compares against non-tiny literals stay silent.
  return x < 10'000.0;
}

}  // namespace streamad
