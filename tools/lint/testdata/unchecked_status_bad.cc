// Fixture: R7 unchecked-status. Bad() drops three Status results (bare
// call, member call, if-body call); Good() consumes one each way —
// assigned, branched on, explicitly void-cast, returned — and is silent.
#include <string>

namespace streamad {

class Store {
 public:
  core::Status Put(const std::string& key, const std::string& value);
  core::Status Flush();
};

core::Status Validate(int v);

void Bad(Store& store, bool ready) {
  Validate(1);
  store.Put("k", "v");
  if (ready) store.Flush();
}

core::Status Good(Store& store, bool ready) {
  core::Status s = Validate(2);
  if (!store.Put("k", "v").ok()) return s;
  // Intentional discard: flush failure is retried by the caller.
  (void)store.Flush();
  const bool ok = Validate(3).ok() && ready;
  return ok ? Validate(4) : s;
}

}  // namespace streamad
