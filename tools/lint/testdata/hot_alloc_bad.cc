// Fixture: allocation patterns inside a STREAMAD_HOT region. The test
// registers "MatMulInto" in the project index so the Matrix-returning
// MatMul( call is flagged too.
#include <memory>
#include <vector>

namespace streamad {

struct Mat {};
Mat MatMul(const Mat& a, const Mat& b);
void MatMulInto(const Mat& a, const Mat& b, Mat* out);

struct Tape {
  std::vector<double> layers;
};

class Worker {
 public:
  // STREAMAD_HOT: fixture hot region
  void Step(const Mat& a, const Mat& b, Tape* tape) {
    double* raw = new double[8];                 // finding: new
    auto owned = std::make_unique<int>(1);       // finding: make_unique
    auto shared = std::make_shared<int>(2);      // finding: make_shared
    std::vector<double> local;
    local.push_back(1.0);                        // finding: growth on local
    local.resize(16);                            // finding: growth on local
    const Mat c = MatMul(a, b);                  // finding: MatMulInto exists
    MatMulInto(a, b, &scratch_);                 // fine: Into form
    scratch_buf_.push_back(0.0);                 // fine: member (underscore)
    tape->layers.resize(4);                      // fine: chained receiver
    delete[] raw;
    (void)owned;
    (void)shared;
    (void)c;
  }

  // Outside any hot region: nothing below is flagged.
  void Setup() {
    cold_.push_back(0.0);
    cold_.resize(32);
    auto p = std::make_unique<int>(3);
    (void)p;
  }

 private:
  Mat scratch_;
  std::vector<double> scratch_buf_;
  std::vector<double> cold_;
};

}  // namespace streamad
