// R1 fixture: the socket-and-clock idiom of an HTTP scrape endpoint.
// Linted as src/net/http_server.cc it must be completely clean (that file
// holds both the wall-clock and socket grants); as an ingress file only
// the clock read fires; as src/net/wire.cc — or anywhere in the detector
// tree — every banned call below fires.

#include <cstdint>

namespace streamad::net {

int OpenListener(std::uint16_t port) {
  const std::uint64_t started = Clock::now().time_since_epoch().count();
  const int fd = socket(2, 1, 0);
  const int enable = 1;
  setsockopt(fd, 1, 2, &enable, sizeof(enable));
  ::bind(fd, nullptr, 0);
  listen(fd, 16);
  (void)started;
  return fd;
}

void ServeOne(int listener) {
  char buffer[64];
  const int client = accept(listener, nullptr, nullptr);
  recv(client, buffer, sizeof(buffer), 0);
  send(client, buffer, sizeof(buffer), 0);
}

// Namespace-qualified and member lookalikes: never the BSD calls, never
// flagged anywhere.
void FineLookalikes(Queue& q, Callback cb) {
  auto bound = std::bind(cb, 1);
  q.send(bound);
  asio::connect(q);
}

}  // namespace streamad::net
