// Fixture: R5 atomic-order. The Bad() block holds every implicit-seq_cst
// access form; Good() repeats each access with an explicit order and must
// stay silent, as must the plain snapshot struct that mirrors an atomic's
// name.
#include <atomic>
#include <cstdint>

namespace streamad {

std::atomic<std::uint64_t> hits{0};
std::atomic<bool> stop_flag{false};
std::atomic<int> lanes[3];

struct Mirror {
  std::uint64_t hits = 0;  // plain field, same name: not the atomic
};

void Bad() {
  hits.fetch_add(1);
  hits.store(0);
  (void)hits.load();
  lanes[1].store(5);
  ++hits;
  hits += 2;
  stop_flag = true;
}

std::uint64_t Good() {
  hits.fetch_add(1, std::memory_order_relaxed);
  stop_flag.store(true, std::memory_order_release);
  lanes[0].store(1, std::memory_order_relaxed);
  Mirror local;
  local.hits = hits.load(std::memory_order_acquire);
  return local.hits;
}

}  // namespace streamad
