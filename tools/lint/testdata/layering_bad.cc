// Fixture: R6 layering. Linted as src/models/... both includes are
// upward edges the DAG forbids; linted as src/serve/... both are
// declared edges and the file is clean.
#include "src/net/http_server.h"
#include "src/serve/fleet.h"

namespace streamad {}
