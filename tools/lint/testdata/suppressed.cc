// Fixture: NOLINT-STREAMAD suppression forms. Only the mismatched-rule
// case at the bottom should survive as a finding.
#include <cstdlib>

namespace streamad {

int SameLineSuppressed() {
  return rand();  // NOLINT-STREAMAD(determinism): fixture exercises same-line
}

int NextLineSuppressed() {
  // NOLINT-STREAMAD-NEXTLINE(determinism): fixture exercises next-line
  return rand();
}

int BareSuppression(double a) {
  return a == 0.5 ? rand() : 0;  // NOLINT-STREAMAD: bare form kills all rules
}

int WrongRuleListed() {
  return rand();  // NOLINT-STREAMAD(hot-alloc): wrong rule, still a finding
}

}  // namespace streamad
