// Fixture: float comparison hazards. Linted under a src/-style path (the
// rule applies everywhere except tests/).

namespace streamad {

bool BadEquality(double a, double b) {
  return a == 0.5;                               // finding: == float literal
}

bool BadInequality(double x) {
  if (x != 1e-3) return true;                    // finding: != float literal
  return false;
}

bool BadTolerance(double a, double b) {
  return a - b < 1e-6;                           // finding: no abs around diff
}

bool FineTolerance(double a, double b) {
  return std::abs(a - b) < 1e-6;                 // fine: abs-wrapped
}

bool FineIntegerCompare(int a, int b) {
  return a == b;                                 // fine: no float literal
}

bool FineLargeThreshold(double t) {
  return t < 0.5;                                // fine: not a tolerance
}

}  // namespace streamad
