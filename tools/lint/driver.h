#ifndef STREAMAD_TOOLS_LINT_DRIVER_H_
#define STREAMAD_TOOLS_LINT_DRIVER_H_

#include <ostream>
#include <string>
#include <vector>

#include "tools/lint/rules.h"

namespace streamad::lint {

enum class OutputFormat { kText, kJson };

struct RunOptions {
  std::string root;                 // repo root; scanned paths are relative
  std::vector<std::string> files;   // explicit repo-relative files; empty =
                                    // scan the default directories
  OutputFormat format = OutputFormat::kText;
};

struct RunResult {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
};

/// The directories a default (no explicit file list) run scans, relative to
/// the root. `tools/lint/testdata` is always excluded — fixtures violate
/// the rules on purpose.
std::vector<std::string> DefaultScanDirs();

/// Lexes + indexes + analyzes the requested files. Findings are sorted by
/// (file, line, rule) and already NOLINT-filtered.
RunResult RunLint(const RunOptions& options);

/// Renders findings. Text: `path:line: [rule] message` lines plus a tally.
/// JSON: stable machine-readable object for the CI artifact.
void WriteReport(const RunResult& result, OutputFormat format,
                 std::ostream& os);

/// Loads and analyzes a single file from disk as `rel_path`, sharing
/// `index`. Exposed for the fixture tests.
std::vector<Finding> LintOneFile(const std::string& disk_path,
                                 const std::string& rel_path,
                                 const ProjectIndex& index);

}  // namespace streamad::lint

#endif  // STREAMAD_TOOLS_LINT_DRIVER_H_
