#ifndef STREAMAD_TOOLS_LINT_DRIVER_H_
#define STREAMAD_TOOLS_LINT_DRIVER_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "tools/lint/rules.h"

namespace streamad::lint {

enum class OutputFormat { kText, kJson };

struct RunOptions {
  std::string root;                 // repo root; scanned paths are relative
  std::vector<std::string> files;   // explicit repo-relative files; empty =
                                    // scan the default directories
  OutputFormat format = OutputFormat::kText;
};

struct RunResult {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  // Live `NOLINT-STREAMAD` markers per rule across the scan ("(any)" for
  // bare markers). Fed to the suppression-debt budget.
  std::map<std::string, int> suppressions;
};

/// The directories a default (no explicit file list) run scans, relative to
/// the root. `tools/lint/testdata` is always excluded — fixtures violate
/// the rules on purpose.
std::vector<std::string> DefaultScanDirs();

/// Lexes + indexes + analyzes the requested files. Findings are sorted by
/// (file, line, rule) and already NOLINT-filtered.
RunResult RunLint(const RunOptions& options);

/// Renders findings. Text: `path:line: [rule] message` lines plus a tally.
/// JSON: stable machine-readable object for the CI artifact.
void WriteReport(const RunResult& result, OutputFormat format,
                 std::ostream& os);

/// Loads and analyzes a single file from disk as `rel_path`, sharing
/// `index`. Exposed for the fixture tests.
std::vector<Finding> LintOneFile(const std::string& disk_path,
                                 const std::string& rel_path,
                                 const ProjectIndex& index);

/// Suppression-debt budget. The baseline file is one `rule count` pair per
/// line, sorted, `#` comments allowed; it is checked in and only ever
/// ratcheted down (or grown in the same review that justifies the new
/// suppression). `LoadSuppressionBaseline` sets `*ok` false on a missing/
/// malformed file. `CheckSuppressionBudget` returns one finding (rule
/// `suppression-budget`, attributed to `baseline_path`) per rule whose
/// live marker count exceeds the baseline.
std::map<std::string, int> LoadSuppressionBaseline(const std::string& path,
                                                   bool* ok);
void WriteSuppressionBaseline(const std::map<std::string, int>& counts,
                              std::ostream& os);
std::vector<Finding> CheckSuppressionBudget(
    const std::map<std::string, int>& current,
    const std::map<std::string, int>& baseline,
    const std::string& baseline_path);

}  // namespace streamad::lint

#endif  // STREAMAD_TOOLS_LINT_DRIVER_H_
