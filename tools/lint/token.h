#ifndef STREAMAD_TOOLS_LINT_TOKEN_H_
#define STREAMAD_TOOLS_LINT_TOKEN_H_

#include <string>
#include <vector>

namespace streamad::lint {

/// Lexical classes the analyzer distinguishes. The tokenizer is not a full
/// C++ lexer — it only needs to be faithful enough that the rule patterns
/// (identifier/punctuation sequences) never fire inside strings, comments
/// or preprocessor text they should not see.
enum class TokKind {
  kIdent,        // identifiers and keywords (`new`, `using`, ...)
  kNumber,       // pp-number: 0x1f, 1e-9, 3.5, 2'000'000
  kString,       // "..." including raw strings R"(...)"
  kChar,         // 'a'
  kPunct,        // operators / punctuation, maximal munch (`==`, `->`, `::`)
  kComment,      // // ... and /* ... */ including the delimiters
  kPpDirective,  // a full `#...` line, backslash continuations joined
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

/// One lexed translation unit, split into the three streams the rules
/// consume: executable-ish code tokens, preprocessor directives, and
/// comments (needed for `STREAMAD_HOT` markers and NOLINT suppressions).
struct SourceFile {
  std::string path;  // repo-relative, '/'-separated
  std::vector<Token> code;
  std::vector<Token> pp;
  std::vector<Token> comments;
};

}  // namespace streamad::lint

#endif  // STREAMAD_TOOLS_LINT_TOKEN_H_
