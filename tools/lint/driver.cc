#include "tools/lint/driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "tools/lint/lexer.h"

namespace streamad::lint {
namespace {

namespace fs = std::filesystem;

bool HasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

bool IsExcluded(const std::string& rel) {
  // Fixtures violate rules on purpose; build trees contain generated code.
  return rel.find("testdata/") != std::string::npos ||
         rel.rfind("build", 0) == 0;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "streamad_lint: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> DefaultScanDirs() {
  return {"src", "tools", "tests", "bench", "examples"};
}

std::vector<Finding> LintOneFile(const std::string& disk_path,
                                 const std::string& rel_path,
                                 const ProjectIndex& index) {
  const SourceFile file = LexFile(rel_path, ReadFileOrDie(disk_path));
  return ApplySuppressions(file, AnalyzeFile(file, index));
}

RunResult RunLint(const RunOptions& options) {
  const fs::path root = options.root.empty() ? fs::path(".")
                                             : fs::path(options.root);

  std::vector<std::string> rel_files = options.files;
  if (rel_files.empty()) {
    for (const std::string& dir : DefaultScanDirs()) {
      const fs::path base = root / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file() ||
            !HasLintableExtension(entry.path())) {
          continue;
        }
        rel_files.push_back(
            fs::relative(entry.path(), root).generic_string());
      }
    }
  }
  std::sort(rel_files.begin(), rel_files.end());
  rel_files.erase(std::unique(rel_files.begin(), rel_files.end()),
                  rel_files.end());

  // Pass 1: lex everything once, building the *Into index the hot-alloc
  // rule matches against. Pass 2 reuses the lexed files.
  std::vector<SourceFile> lexed;
  ProjectIndex index;
  for (const std::string& rel : rel_files) {
    if (IsExcluded(rel)) continue;
    SourceFile f = LexFile(rel, ReadFileOrDie((root / rel).string()));
    IndexFile(f, &index);
    lexed.push_back(std::move(f));
  }

  RunResult result;
  result.files_scanned = lexed.size();
  for (const SourceFile& f : lexed) {
    std::vector<Finding> findings =
        ApplySuppressions(f, AnalyzeFile(f, index));
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(findings.begin()),
                           std::make_move_iterator(findings.end()));
    CountSuppressions(f, &result.suppressions);
  }

  // Tree-level pass (lock-order cycles, include cycles). Its findings are
  // attributed to real files, so the same NOLINT machinery applies — route
  // each finding through its file's suppression comments.
  {
    std::vector<Finding> tree = AnalyzeTree(lexed, index);
    std::map<std::string, std::vector<Finding>> by_file;
    for (Finding& f : tree) by_file[f.file].push_back(std::move(f));
    for (const SourceFile& f : lexed) {
      const auto it = by_file.find(f.path);
      if (it == by_file.end()) continue;
      std::vector<Finding> kept =
          ApplySuppressions(f, std::move(it->second));
      result.findings.insert(result.findings.end(),
                             std::make_move_iterator(kept.begin()),
                             std::make_move_iterator(kept.end()));
      by_file.erase(it);
    }
    for (auto& [path, rest] : by_file) {
      result.findings.insert(result.findings.end(),
                             std::make_move_iterator(rest.begin()),
                             std::make_move_iterator(rest.end()));
    }
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return result;
}

std::map<std::string, int> LoadSuppressionBaseline(const std::string& path,
                                                   bool* ok) {
  *ok = false;
  std::map<std::string, int> counts;
  std::ifstream in(path);
  if (!in) return counts;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string rule;
    int count = 0;
    if (!(ls >> rule)) continue;  // blank / comment-only line
    if (!(ls >> count) || count < 0) return counts;
    counts[rule] += count;
  }
  *ok = true;
  return counts;
}

void WriteSuppressionBaseline(const std::map<std::string, int>& counts,
                              std::ostream& os) {
  os << "# streamad_lint suppression-debt baseline.\n"
     << "# One `rule count` pair per line: the number of NOLINT-STREAMAD\n"
     << "# markers naming that rule anywhere in the scanned tree. CI fails\n"
     << "# when live debt exceeds a line here; regenerate with\n"
     << "#   streamad_lint --write-suppression-baseline=" "tools/lint/"
        "suppression_baseline.txt\n"
     << "# and justify any increase in the same review.\n";
  for (const auto& [rule, count] : counts) {
    os << rule << " " << count << "\n";
  }
}

std::vector<Finding> CheckSuppressionBudget(
    const std::map<std::string, int>& current,
    const std::map<std::string, int>& baseline,
    const std::string& baseline_path) {
  std::vector<Finding> out;
  for (const auto& [rule, count] : current) {
    const auto it = baseline.find(rule);
    const int allowed = it == baseline.end() ? 0 : it->second;
    if (count <= allowed) continue;
    out.push_back(
        {baseline_path, 1, kRuleSuppressionBudget,
         "NOLINT-STREAMAD debt for `" + rule + "` grew to " +
             std::to_string(count) + " (baseline " +
             std::to_string(allowed) +
             "); fix the finding instead, or raise the baseline in the "
             "same review with justification"});
  }
  return out;
}

void WriteReport(const RunResult& result, OutputFormat format,
                 std::ostream& os) {
  if (format == OutputFormat::kText) {
    for (const Finding& f : result.findings) {
      os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
         << "\n";
    }
    if (!result.suppressions.empty()) {
      os << "suppression debt:";
      for (const auto& [rule, count] : result.suppressions) {
        os << " " << rule << "=" << count;
      }
      os << "\n";
    }
    os << (result.findings.empty() ? "streamad_lint: clean ("
                                   : "streamad_lint: FAILED (")
       << result.findings.size() << " finding"
       << (result.findings.size() == 1 ? "" : "s") << ", "
       << result.files_scanned << " files scanned)\n";
    return;
  }
  os << "{\n  \"files_scanned\": " << result.files_scanned
     << ",\n  \"finding_count\": " << result.findings.size()
     << ",\n  \"suppressions\": {";
  {
    bool first = true;
    for (const auto& [rule, count] : result.suppressions) {
      os << (first ? "" : ", ") << "\"" << JsonEscape(rule)
         << "\": " << count;
      first = false;
    }
  }
  os << "},\n  \"findings\": [";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    os << (i == 0 ? "\n" : ",\n")
       << "    {\"file\": \"" << JsonEscape(f.file) << "\", \"line\": "
       << f.line << ", \"rule\": \"" << JsonEscape(f.rule)
       << "\", \"message\": \"" << JsonEscape(f.message) << "\"}";
  }
  os << (result.findings.empty() ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace streamad::lint
