#ifndef STREAMAD_TOOLS_LINT_LEXER_H_
#define STREAMAD_TOOLS_LINT_LEXER_H_

#include <string>
#include <string_view>

#include "tools/lint/token.h"

namespace streamad::lint {

/// Tokenizes `source` (the full text of one file) into the three token
/// streams of a `SourceFile`. `path` is recorded verbatim; it should be the
/// repo-relative path so that rule applicability (src/ vs tests/ vs bench/)
/// and allowlists work.
///
/// Guarantees the rules rely on:
///  - string/char literals (including raw strings) never leak tokens,
///  - a `#` line becomes exactly one kPpDirective token with backslash
///    continuations joined, so `#include <iostream>` is matchable as text,
///  - multi-char operators are maximal-munch (`==` is one token, never
///    `=` `=`), so comparison patterns are unambiguous,
///  - every token carries the 1-based line it starts on.
SourceFile LexFile(std::string path, std::string_view source);

/// True if a kNumber token spells a floating-point literal (has a decimal
/// point, a decimal exponent, or an f/F/l/L suffix on a fractional form;
/// hex integers like 0x1E are NOT float).
bool IsFloatLiteral(std::string_view number_text);

}  // namespace streamad::lint

#endif  // STREAMAD_TOOLS_LINT_LEXER_H_
