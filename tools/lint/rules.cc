#include "tools/lint/rules.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <string_view>
#include <utility>

#include "tools/lint/lexer.h"

namespace streamad::lint {
namespace {

bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         std::string_view(s).substr(0, prefix.size()) == prefix;
}

bool EndsWith(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         std::string_view(s).substr(s.size() - suffix.size()) == suffix;
}

bool IsHeaderPath(const std::string& path) { return EndsWith(path, ".h"); }

bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

// ---------------------------------------------------------------------------
// R1: determinism. The detector pipeline must be bit-reproducible from the
// seed alone (golden-stream digests depend on it), so wall-clock and
// OS-entropy sources are banned in src/ outside the sanctioned homes below.
// The same rule also fences socket I/O out of the detector tree: network
// code is nondeterministic by nature and belongs in src/net/.
// ---------------------------------------------------------------------------

// Sanctioned exceptions, each scoped to the capability it actually needs
// and carrying its justification. Paths ending in '/' allowlist the whole
// subtree; others must match exactly. Keep this list tight: every entry is
// a place where the banned effect is the *product*, not an implementation
// convenience.
struct DeterminismAllowlistEntry {
  std::string_view path;
  bool wall_clock;  // may read clocks / OS entropy
  bool sockets;     // may perform socket I/O
  std::string_view reason;
};

constexpr DeterminismAllowlistEntry kDeterminismAllowlist[] = {
    {"src/common/rng.h", true, false,
     "the seeded RNG wrapper is the one sanctioned entropy boundary"},
    {"src/common/rng.cc", true, false,
     "implementation of the sanctioned entropy boundary"},
    {"src/obs/", true, false,
     "stage timing spans and flight-recorder dump timestamps measure real "
     "time by design and never feed back into detection arithmetic"},
    {"src/net/", true, true,
     "the live observability plane (HTTP scrape endpoints) serves real "
     "clients over real sockets; it only reads fleet snapshots"},
};

struct DeterminismScope {
  bool ban_clocks = false;
  bool ban_sockets = false;
};

DeterminismScope DeterminismScopeFor(const std::string& path) {
  DeterminismScope scope;
  if (!StartsWith(path, "src/")) return scope;
  scope.ban_clocks = true;
  scope.ban_sockets = true;
  for (const DeterminismAllowlistEntry& entry : kDeterminismAllowlist) {
    const bool subtree = entry.path.back() == '/';
    const bool match =
        subtree ? StartsWith(path, entry.path) : path == entry.path;
    if (!match) continue;
    if (entry.wall_clock) scope.ban_clocks = false;
    if (entry.sockets) scope.ban_sockets = false;
  }
  return scope;
}

bool IsSocketCallName(const std::string& name) {
  return name == "socket" || name == "accept" || name == "bind" ||
         name == "listen" || name == "connect" || name == "recv" ||
         name == "send" || name == "setsockopt";
}

void CheckDeterminism(const SourceFile& f, std::vector<Finding>* out) {
  const DeterminismScope scope = DeterminismScopeFor(f.path);
  if (!scope.ban_clocks && !scope.ban_sockets) return;
  const std::vector<Token>& code = f.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokKind::kIdent) continue;

    if (scope.ban_clocks && t.text == "random_device") {
      out->push_back({f.path, t.line, kRuleDeterminism,
                      "std::random_device draws OS entropy; seed "
                      "streamad::Rng (src/common/rng.h) instead"});
      continue;
    }

    const bool call_like = i + 1 < code.size() && IsPunct(code[i + 1], "(");
    if (!call_like) continue;
    const Token* prev = i > 0 ? &code[i - 1] : nullptr;
    const bool member = prev != nullptr &&
                        (IsPunct(*prev, ".") || IsPunct(*prev, "->"));

    if (scope.ban_clocks && t.text == "now" && prev != nullptr &&
        IsPunct(*prev, "::")) {
      out->push_back({f.path, t.line, kRuleDeterminism,
                      "clock ::now() in the detector pipeline breaks "
                      "reproducibility; timing belongs in src/obs/"});
      continue;
    }

    if (scope.ban_sockets && !member && IsSocketCallName(t.text)) {
      // `std::bind(...)` / `asio::send(...)` are namespace-qualified and
      // not the BSD calls; unqualified `bind(...)` and global-scope
      // `::bind(...)` are.
      const bool namespace_qualified =
          prev != nullptr && IsPunct(*prev, "::") && i >= 2 &&
          code[i - 2].kind == TokKind::kIdent;
      if (!namespace_qualified) {
        out->push_back({f.path, t.line, kRuleDeterminism,
                        "`" + t.text +
                            "()` is socket I/O in the detector tree; "
                            "network code belongs in src/net/"});
        continue;
      }
    }
    if (member) continue;  // foo.time(), obj->rand(): not the libc calls

    if (scope.ban_clocks &&
        (t.text == "rand" || t.text == "srand" || t.text == "time")) {
      // `other_ns::time(...)` is not the libc call; `std::time` is.
      if (prev != nullptr && IsPunct(*prev, "::")) {
        if (!(i >= 2 && IsIdent(code[i - 2], "std"))) continue;
      }
      out->push_back({f.path, t.line, kRuleDeterminism,
                      "`" + t.text +
                          "()` is seed-unstable; use streamad::Rng "
                          "(src/common/rng.h)"});
    }
  }
}

// ---------------------------------------------------------------------------
// R2: hot-path allocation. A `// STREAMAD_HOT` comment marks the next
// brace-balanced block (by convention: the body of the function declared
// right below it) as steady-state Step-path code that must not allocate.
// ---------------------------------------------------------------------------

struct Region {
  std::size_t begin;  // index of `{` in code stream
  std::size_t end;    // index of matching `}`
};

// A comment is a hot marker only when STREAMAD_HOT is its first word
// (`// STREAMAD_HOT: step path`); prose that merely mentions the marker
// ("allocates in a STREAMAD_HOT region") must not open a region.
bool IsHotMarker(const std::string& comment) {
  std::size_t i = 0;
  while (i < comment.size() &&
         (comment[i] == '/' || comment[i] == '*' ||
          std::isspace(static_cast<unsigned char>(comment[i])))) {
    ++i;
  }
  return comment.compare(i, 12, "STREAMAD_HOT") == 0;
}

std::vector<Region> HotRegions(const SourceFile& f) {
  std::vector<Region> regions;
  for (const Token& c : f.comments) {
    if (!IsHotMarker(c.text)) continue;
    // First code token at or after the marker line, then its next `{`.
    std::size_t i = 0;
    while (i < f.code.size() && f.code[i].line < c.line) ++i;
    while (i < f.code.size() && !IsPunct(f.code[i], "{")) ++i;
    if (i == f.code.size()) continue;
    std::size_t depth = 0;
    std::size_t j = i;
    for (; j < f.code.size(); ++j) {
      if (IsPunct(f.code[j], "{")) ++depth;
      if (IsPunct(f.code[j], "}") && --depth == 0) break;
    }
    if (j < f.code.size()) regions.push_back({i, j});
  }
  return regions;
}

bool ReceiverLooksLocal(const Token& receiver) {
  // Google style: members end in `_`; anything else reached via `.` is a
  // local or parameter. `out->resize(...)` (arrow) is caller-owned scratch
  // and intentionally not matched.
  return receiver.kind == TokKind::kIdent && !EndsWith(receiver.text, "_");
}

void CheckHotRegion(const SourceFile& f, const ProjectIndex& index,
                    const Region& r, std::vector<Finding>* out) {
  const std::vector<Token>& code = f.code;
  for (std::size_t i = r.begin + 1; i < r.end; ++i) {
    const Token& t = code[i];
    if (t.kind != TokKind::kIdent) continue;

    if (t.text == "new" && !(i > 0 && IsIdent(code[i - 1], "operator"))) {
      out->push_back({f.path, t.line, kRuleHotAlloc,
                      "`new` in a STREAMAD_HOT region; hoist the "
                      "allocation into a reused scratch member"});
      continue;
    }
    if (t.text == "make_unique" || t.text == "make_shared") {
      out->push_back({f.path, t.line, kRuleHotAlloc,
                      "`" + t.text + "` allocates in a STREAMAD_HOT region"});
      continue;
    }

    const bool call_like = i + 1 < code.size() && IsPunct(code[i + 1], "(");
    if (!call_like) continue;

    // `x.push_back(...)` with a plain local receiver. Chained accesses
    // (`tape->layers.resize`, `out->data.reserve`) reach caller-owned
    // scratch whose capacity amortises, so only a bare identifier matches.
    const bool chained =
        i >= 3 && (IsPunct(code[i - 3], ".") || IsPunct(code[i - 3], "->"));
    if ((t.text == "push_back" || t.text == "emplace_back" ||
         t.text == "resize" || t.text == "reserve") &&
        i >= 2 && IsPunct(code[i - 1], ".") && !chained &&
        ReceiverLooksLocal(code[i - 2])) {
      out->push_back({f.path, t.line, kRuleHotAlloc,
                      "`" + code[i - 2].text + "." + t.text +
                          "` grows a non-member container in a "
                          "STREAMAD_HOT region"});
      continue;
    }

    if (!EndsWith(t.text, "Into") &&
        index.into_names.count(t.text + "Into") != 0) {
      out->push_back({f.path, t.line, kRuleHotAlloc,
                      "`" + t.text + "()` returns by value in a "
                          "STREAMAD_HOT region; use `" + t.text +
                          "Into()` with a scratch out-parameter"});
    }
  }
}

void CheckHotAlloc(const SourceFile& f, const ProjectIndex& index,
                   std::vector<Finding>* out) {
  for (const Region& r : HotRegions(f)) CheckHotRegion(f, index, r, out);
}

// ---------------------------------------------------------------------------
// R3: float safety. Exact ==/!= against floating literals, and
// difference-vs-tolerance checks with no abs(), are almost always latent
// bugs in scoring/calibration code (a drift detector that compares
// `stat != 0.0` or `mu - prev < 1e-9` silently never fires on the negative
// side). Tests are exempt: golden digests legitimately assert exactness.
// ---------------------------------------------------------------------------

bool FloatCompareRuleApplies(const std::string& path) {
  return !StartsWith(path, "tests/");
}

bool IsFloatNumber(const Token& t) {
  return t.kind == TokKind::kNumber && IsFloatLiteral(t.text);
}

// Backward scan from the comparison operator, classifying the left operand:
// does it contain a top-level binary `-` and any abs-like call?
void CheckToleranceWithoutAbs(const SourceFile& f, std::size_t op_index,
                              std::vector<Finding>* out) {
  const std::vector<Token>& code = f.code;
  bool has_minus = false;
  bool has_abs = false;
  std::size_t depth = 0;
  for (std::size_t j = op_index; j-- > 0;) {
    const Token& t = code[j];
    if (IsPunct(t, ")")) {
      ++depth;
      continue;
    }
    if (IsPunct(t, "(")) {
      if (depth == 0) break;
      --depth;
      continue;
    }
    if (depth == 0 &&
        (IsPunct(t, ";") || IsPunct(t, ",") || IsPunct(t, "{") ||
         IsPunct(t, "}") || IsPunct(t, "&&") || IsPunct(t, "||") ||
         IsPunct(t, "?") || IsPunct(t, ":") || IsPunct(t, "=") ||
         IsIdent(t, "return"))) {
      break;
    }
    if (t.kind == TokKind::kIdent &&
        (t.text == "abs" || t.text == "fabs" || t.text == "hypot")) {
      has_abs = true;
    }
    if (IsPunct(t, "-") && j > 0) {
      const Token& prev = code[j - 1];
      const bool binary = prev.kind == TokKind::kIdent ||
                          prev.kind == TokKind::kNumber ||
                          IsPunct(prev, ")") || IsPunct(prev, "]");
      if (binary) has_minus = true;
    }
  }
  if (has_minus && !has_abs) {
    out->push_back({f.path, code[op_index].line, kRuleFloatCompare,
                    "difference compared against a tolerance without "
                    "std::abs; negative deviations pass silently"});
  }
}

void CheckFloatCompare(const SourceFile& f, std::vector<Finding>* out) {
  if (!FloatCompareRuleApplies(f.path)) return;
  const std::vector<Token>& code = f.code;
  for (std::size_t i = 1; i + 1 < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "==" || t.text == "!=") {
      if (IsFloatNumber(code[i - 1]) || IsFloatNumber(code[i + 1])) {
        out->push_back({f.path, t.line, kRuleFloatCompare,
                        "exact `" + t.text +
                            "` against a floating-point literal; compare "
                            "with an explicit tolerance"});
      }
      continue;
    }
    if (t.text == "<" || t.text == "<=") {
      const Token& rhs = code[i + 1];
      if (!IsFloatNumber(rhs)) continue;
      const double v = std::strtod(rhs.text.c_str(), nullptr);
      if (v > 0.0 && v <= 1e-3) CheckToleranceWithoutAbs(f, i, out);
    }
  }
}

// ---------------------------------------------------------------------------
// R4: include/header hygiene.
// ---------------------------------------------------------------------------

std::string PpSymbol(const std::string& directive_text,
                     std::string_view keyword) {
  // "#ifndef  FOO" → "FOO" (empty when the directive is not `keyword`).
  std::string_view s = directive_text;
  if (!s.empty() && s[0] == '#') s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s[0]))) {
    s.remove_prefix(1);
  }
  if (s.substr(0, keyword.size()) != keyword) return "";
  s.remove_prefix(keyword.size());
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s[0]))) {
    s.remove_prefix(1);
  }
  std::size_t end = 0;
  while (end < s.size() &&
         !std::isspace(static_cast<unsigned char>(s[end]))) {
    ++end;
  }
  return std::string(s.substr(0, end));
}

void CheckHeaderHygiene(const SourceFile& f, std::vector<Finding>* out) {
  if (!IsHeaderPath(f.path)) return;

  const std::string expected = ExpectedHeaderGuard(f.path);
  std::string ifndef_sym;
  std::string define_sym;
  int guard_line = 1;
  for (const Token& d : f.pp) {
    if (ifndef_sym.empty()) {
      ifndef_sym = PpSymbol(d.text, "ifndef");
      guard_line = d.line;
      continue;
    }
    define_sym = PpSymbol(d.text, "define");
    break;  // only the first two directives can form the guard
  }
  if (ifndef_sym.empty() || ifndef_sym != define_sym) {
    out->push_back({f.path, guard_line, kRuleHeaderGuard,
                    "missing include guard; expected `#ifndef " + expected +
                        "` / `#define " + expected + "`"});
  } else if (ifndef_sym != expected) {
    out->push_back({f.path, guard_line, kRuleHeaderGuard,
                    "include guard `" + ifndef_sym + "` should be `" +
                        expected + "`"});
  }

  for (std::size_t i = 0; i + 1 < f.code.size(); ++i) {
    if (IsIdent(f.code[i], "using") && IsIdent(f.code[i + 1], "namespace")) {
      out->push_back({f.path, f.code[i].line, kRuleUsingNamespace,
                      "`using namespace` in a header leaks into every "
                      "includer"});
    }
  }

  if (StartsWith(f.path, "src/")) {
    for (const Token& d : f.pp) {
      if (StartsWith(d.text, "#include") &&
          d.text.find("<iostream>") != std::string::npos) {
        out->push_back({f.path, d.line, kRuleIostreamInclude,
                        "<iostream> in a library header drags iostream "
                        "static initialisers into every TU; use <ostream> "
                        "or move the printing into a .cc"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

struct SuppressionSet {
  bool all = false;
  std::set<std::string> rules;

  bool Covers(const std::string& rule) const {
    return all || rules.count(rule) != 0;
  }
};

void ParseSuppression(const std::string& comment, std::size_t marker_pos,
                      SuppressionSet* set) {
  std::size_t i = marker_pos;
  while (i < comment.size() && comment[i] != '(' && comment[i] != '\n') {
    // Stop at anything that ends the marker word (e.g. `: reason`).
    if (std::isspace(static_cast<unsigned char>(comment[i])) ||
        comment[i] == ':') {
      set->all = true;
      return;
    }
    ++i;
  }
  if (i == comment.size() || comment[i] != '(') {
    set->all = true;
    return;
  }
  const std::size_t close = comment.find(')', i);
  if (close == std::string::npos) {
    set->all = true;
    return;
  }
  std::string rule;
  for (std::size_t j = i + 1; j <= close; ++j) {
    const char c = comment[j];
    if (c == ',' || c == ')') {
      if (!rule.empty()) set->rules.insert(rule);
      rule.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      rule += c;
    }
  }
}

}  // namespace

void IndexFile(const SourceFile& file, ProjectIndex* index) {
  const std::vector<Token>& code = file.code;
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (code[i].kind == TokKind::kIdent && EndsWith(code[i].text, "Into") &&
        code[i].text != "Into" && IsPunct(code[i + 1], "(")) {
      index->into_names.insert(code[i].text);
    }
  }
}

std::vector<Finding> AnalyzeFile(const SourceFile& file,
                                 const ProjectIndex& index) {
  std::vector<Finding> findings;
  CheckDeterminism(file, &findings);
  CheckHotAlloc(file, index, &findings);
  CheckFloatCompare(file, &findings);
  CheckHeaderHygiene(file, &findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::pair(a.line, std::string_view(a.rule)) <
                     std::pair(b.line, std::string_view(b.rule));
            });
  return findings;
}

std::vector<Finding> ApplySuppressions(const SourceFile& file,
                                       std::vector<Finding> findings) {
  static constexpr std::string_view kMarker = "NOLINT-STREAMAD";
  static constexpr std::string_view kNextLine = "NOLINT-STREAMAD-NEXTLINE";
  std::map<int, SuppressionSet> by_line;
  for (const Token& c : file.comments) {
    const std::size_t pos = c.text.find(kMarker);
    if (pos == std::string::npos) continue;
    const bool next_line =
        c.text.compare(pos, kNextLine.size(), kNextLine) == 0;
    const int target = next_line ? c.line + 1 : c.line;
    ParseSuppression(c.text, pos + (next_line ? kNextLine.size()
                                              : kMarker.size()),
                     &by_line[target]);
  }
  if (by_line.empty()) return findings;

  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& f : findings) {
    const auto it = by_line.find(f.line);
    if (it != by_line.end() && it->second.Covers(f.rule)) continue;
    kept.push_back(std::move(f));
  }
  return kept;
}

std::string ExpectedHeaderGuard(const std::string& rel_path) {
  std::string_view p = rel_path;
  if (p.substr(0, 4) == "src/") p.remove_prefix(4);
  std::string guard = "STREAMAD_";
  for (char c : p) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

}  // namespace streamad::lint
