#include "tools/lint/rules.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <string_view>
#include <tuple>
#include <utility>

#include "tools/lint/lexer.h"

// Four non-obvious choices shape the R5/R6/R7 implementations below:
//
//  - All cross-file knowledge is NAME-based, not type-based. Pass 1
//    indexes the declared names of atomics, mutexes and Status-returning
//    functions tree-wide; pass 2 matches uses by identifier. That makes
//    the analysis O(tokens) with no C++ type system, at the cost of
//    merging same-named variables across classes — which is why the repo
//    keeps concurrency-relevant member names unique (enforced socially;
//    a collision shows up as a surprising finding and gets renamed).
//
//  - The mutex-acquisition graph is LEXICAL: an edge A->B means a guard
//    on B was constructed inside the brace scope of a live guard on A in
//    one translation unit. Cross-function acquisition chains (f locks A
//    then calls g which locks B) are invisible; the golden rule the
//    graph does enforce is that the visible nesting order is globally
//    consistent, which is what TSan cannot check for interleavings the
//    tests never run.
//
//  - The layer DAG is checked in here (kLayerMap / kLayerEdges) rather
//    than in a config file, so the analyzer stays dependency-free and
//    the DAG is reviewed like code. docs/ARCHITECTURE.md §9 mirrors it.
//
//  - R7 only flags a call whose result is syntactically discarded — an
//    expression-statement call of an indexed Status function. Anything
//    assigned, returned, compared, passed on, or explicitly cast to
//    (void) counts as checked.

namespace streamad::lint {
namespace {

bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         std::string_view(s).substr(0, prefix.size()) == prefix;
}

bool EndsWith(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         std::string_view(s).substr(s.size() - suffix.size()) == suffix;
}

bool IsHeaderPath(const std::string& path) { return EndsWith(path, ".h"); }

bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

// ---------------------------------------------------------------------------
// R1: determinism. The detector pipeline must be bit-reproducible from the
// seed alone (golden-stream digests depend on it), so wall-clock and
// OS-entropy sources are banned in src/ outside the sanctioned homes below.
// The same rule also fences socket I/O out of the detector tree: network
// code is nondeterministic by nature and belongs in src/net/.
// ---------------------------------------------------------------------------

// Sanctioned exceptions, each scoped to the capability it actually needs
// and carrying its justification. Paths ending in '/' allowlist the whole
// subtree; others must match exactly. Keep this list tight: every entry is
// a place where the banned effect is the *product*, not an implementation
// convenience.
struct DeterminismAllowlistEntry {
  std::string_view path;
  bool wall_clock;  // may read clocks / OS entropy
  bool sockets;     // may perform socket I/O
  std::string_view reason;
};

constexpr DeterminismAllowlistEntry kDeterminismAllowlist[] = {
    {"src/common/rng.h", true, false,
     "the seeded RNG wrapper is the one sanctioned entropy boundary"},
    {"src/common/rng.cc", true, false,
     "implementation of the sanctioned entropy boundary"},
    {"src/obs/", true, false,
     "stage timing spans and flight-recorder dump timestamps measure real "
     "time by design and never feed back into detection arithmetic"},
    {"src/net/http_server.cc", true, true,
     "the live observability plane (HTTP scrape endpoint) serves real "
     "clients over real sockets; it only reads fleet snapshots"},
    {"src/net/socket_util.cc", false, true,
     "the shared listener helper is where bind/listen/setsockopt live"},
    {"src/net/ingress_server.cc", false, true,
     "the binary ingress event loop owns accept/recv/send; timing is "
     "poll-driven so it needs no clock grant"},
    {"src/net/ingress_client.cc", false, true,
     "the blocking ingress client owns connect/recv/send; its read "
     "timeout is poll-driven so it needs no clock grant"},
    // Deliberately absent: src/net/wire.{h,cc}. The codec is pure bytes
    // over BinaryWriter/BinaryReader and must stay socket- and clock-free
    // so tests and replay tools can reuse it deterministically.
};

struct DeterminismScope {
  bool ban_clocks = false;
  bool ban_sockets = false;
};

DeterminismScope DeterminismScopeFor(const std::string& path) {
  DeterminismScope scope;
  if (!StartsWith(path, "src/")) return scope;
  scope.ban_clocks = true;
  scope.ban_sockets = true;
  for (const DeterminismAllowlistEntry& entry : kDeterminismAllowlist) {
    const bool subtree = entry.path.back() == '/';
    const bool match =
        subtree ? StartsWith(path, entry.path) : path == entry.path;
    if (!match) continue;
    if (entry.wall_clock) scope.ban_clocks = false;
    if (entry.sockets) scope.ban_sockets = false;
  }
  return scope;
}

bool IsSocketCallName(const std::string& name) {
  return name == "socket" || name == "accept" || name == "bind" ||
         name == "listen" || name == "connect" || name == "recv" ||
         name == "send" || name == "setsockopt";
}

void CheckDeterminism(const SourceFile& f, std::vector<Finding>* out) {
  const DeterminismScope scope = DeterminismScopeFor(f.path);
  if (!scope.ban_clocks && !scope.ban_sockets) return;
  const std::vector<Token>& code = f.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokKind::kIdent) continue;

    if (scope.ban_clocks && t.text == "random_device") {
      out->push_back({f.path, t.line, kRuleDeterminism,
                      "std::random_device draws OS entropy; seed "
                      "streamad::Rng (src/common/rng.h) instead"});
      continue;
    }

    const bool call_like = i + 1 < code.size() && IsPunct(code[i + 1], "(");
    if (!call_like) continue;
    const Token* prev = i > 0 ? &code[i - 1] : nullptr;
    const bool member = prev != nullptr &&
                        (IsPunct(*prev, ".") || IsPunct(*prev, "->"));

    if (scope.ban_clocks && t.text == "now" && prev != nullptr &&
        IsPunct(*prev, "::")) {
      out->push_back({f.path, t.line, kRuleDeterminism,
                      "clock ::now() in the detector pipeline breaks "
                      "reproducibility; timing belongs in src/obs/"});
      continue;
    }

    if (scope.ban_sockets && !member && IsSocketCallName(t.text)) {
      // `std::bind(...)` / `asio::send(...)` are namespace-qualified and
      // not the BSD calls; unqualified `bind(...)` and global-scope
      // `::bind(...)` are.
      const bool namespace_qualified =
          prev != nullptr && IsPunct(*prev, "::") && i >= 2 &&
          code[i - 2].kind == TokKind::kIdent;
      if (!namespace_qualified) {
        out->push_back({f.path, t.line, kRuleDeterminism,
                        "`" + t.text +
                            "()` is socket I/O in the detector tree; "
                            "network code belongs in src/net/"});
        continue;
      }
    }
    if (member) continue;  // foo.time(), obj->rand(): not the libc calls

    if (scope.ban_clocks &&
        (t.text == "rand" || t.text == "srand" || t.text == "time")) {
      // `other_ns::time(...)` is not the libc call; `std::time` is.
      if (prev != nullptr && IsPunct(*prev, "::")) {
        if (!(i >= 2 && IsIdent(code[i - 2], "std"))) continue;
      }
      out->push_back({f.path, t.line, kRuleDeterminism,
                      "`" + t.text +
                          "()` is seed-unstable; use streamad::Rng "
                          "(src/common/rng.h)"});
    }
  }
}

// ---------------------------------------------------------------------------
// R2: hot-path allocation. A `// STREAMAD_HOT` comment marks the next
// brace-balanced block (by convention: the body of the function declared
// right below it) as steady-state Step-path code that must not allocate.
// ---------------------------------------------------------------------------

struct Region {
  std::size_t begin;  // index of `{` in code stream
  std::size_t end;    // index of matching `}`
};

// A comment is a hot marker only when STREAMAD_HOT is its first word
// (`// STREAMAD_HOT: step path`); prose that merely mentions the marker
// ("allocates in a STREAMAD_HOT region") must not open a region.
bool IsHotMarker(const std::string& comment) {
  std::size_t i = 0;
  while (i < comment.size() &&
         (comment[i] == '/' || comment[i] == '*' ||
          std::isspace(static_cast<unsigned char>(comment[i])))) {
    ++i;
  }
  return comment.compare(i, 12, "STREAMAD_HOT") == 0;
}

std::vector<Region> HotRegions(const SourceFile& f) {
  std::vector<Region> regions;
  for (const Token& c : f.comments) {
    if (!IsHotMarker(c.text)) continue;
    // First code token at or after the marker line, then its next `{`.
    std::size_t i = 0;
    while (i < f.code.size() && f.code[i].line < c.line) ++i;
    while (i < f.code.size() && !IsPunct(f.code[i], "{")) ++i;
    if (i == f.code.size()) continue;
    std::size_t depth = 0;
    std::size_t j = i;
    for (; j < f.code.size(); ++j) {
      if (IsPunct(f.code[j], "{")) ++depth;
      if (IsPunct(f.code[j], "}") && --depth == 0) break;
    }
    if (j < f.code.size()) regions.push_back({i, j});
  }
  return regions;
}

bool ReceiverLooksLocal(const Token& receiver) {
  // Google style: members end in `_`; anything else reached via `.` is a
  // local or parameter. `out->resize(...)` (arrow) is caller-owned scratch
  // and intentionally not matched.
  return receiver.kind == TokKind::kIdent && !EndsWith(receiver.text, "_");
}

void CheckHotRegion(const SourceFile& f, const ProjectIndex& index,
                    const Region& r, std::vector<Finding>* out) {
  const std::vector<Token>& code = f.code;
  for (std::size_t i = r.begin + 1; i < r.end; ++i) {
    const Token& t = code[i];
    if (t.kind != TokKind::kIdent) continue;

    if (t.text == "new" && !(i > 0 && IsIdent(code[i - 1], "operator"))) {
      out->push_back({f.path, t.line, kRuleHotAlloc,
                      "`new` in a STREAMAD_HOT region; hoist the "
                      "allocation into a reused scratch member"});
      continue;
    }
    if (t.text == "make_unique" || t.text == "make_shared") {
      out->push_back({f.path, t.line, kRuleHotAlloc,
                      "`" + t.text + "` allocates in a STREAMAD_HOT region"});
      continue;
    }

    const bool call_like = i + 1 < code.size() && IsPunct(code[i + 1], "(");
    if (!call_like) continue;

    // `x.push_back(...)` with a plain local receiver. Chained accesses
    // (`tape->layers.resize`, `out->data.reserve`) reach caller-owned
    // scratch whose capacity amortises, so only a bare identifier matches.
    const bool chained =
        i >= 3 && (IsPunct(code[i - 3], ".") || IsPunct(code[i - 3], "->"));
    if ((t.text == "push_back" || t.text == "emplace_back" ||
         t.text == "resize" || t.text == "reserve") &&
        i >= 2 && IsPunct(code[i - 1], ".") && !chained &&
        ReceiverLooksLocal(code[i - 2])) {
      out->push_back({f.path, t.line, kRuleHotAlloc,
                      "`" + code[i - 2].text + "." + t.text +
                          "` grows a non-member container in a "
                          "STREAMAD_HOT region"});
      continue;
    }

    if (!EndsWith(t.text, "Into") &&
        index.into_names.count(t.text + "Into") != 0) {
      out->push_back({f.path, t.line, kRuleHotAlloc,
                      "`" + t.text + "()` returns by value in a "
                          "STREAMAD_HOT region; use `" + t.text +
                          "Into()` with a scratch out-parameter"});
    }
  }
}

void CheckHotAlloc(const SourceFile& f, const ProjectIndex& index,
                   std::vector<Finding>* out) {
  for (const Region& r : HotRegions(f)) CheckHotRegion(f, index, r, out);
}

// ---------------------------------------------------------------------------
// R3: float safety. Exact ==/!= against floating literals, and
// difference-vs-tolerance checks with no abs(), are almost always latent
// bugs in scoring/calibration code (a drift detector that compares
// `stat != 0.0` or `mu - prev < 1e-9` silently never fires on the negative
// side). Tests are exempt: golden digests legitimately assert exactness.
// ---------------------------------------------------------------------------

bool FloatCompareRuleApplies(const std::string& path) {
  return !StartsWith(path, "tests/");
}

bool IsFloatNumber(const Token& t) {
  return t.kind == TokKind::kNumber && IsFloatLiteral(t.text);
}

// Backward scan from the comparison operator, classifying the left operand:
// does it contain a top-level binary `-` and any abs-like call?
void CheckToleranceWithoutAbs(const SourceFile& f, std::size_t op_index,
                              std::vector<Finding>* out) {
  const std::vector<Token>& code = f.code;
  bool has_minus = false;
  bool has_abs = false;
  std::size_t depth = 0;
  for (std::size_t j = op_index; j-- > 0;) {
    const Token& t = code[j];
    if (IsPunct(t, ")")) {
      ++depth;
      continue;
    }
    if (IsPunct(t, "(")) {
      if (depth == 0) break;
      --depth;
      continue;
    }
    if (depth == 0 &&
        (IsPunct(t, ";") || IsPunct(t, ",") || IsPunct(t, "{") ||
         IsPunct(t, "}") || IsPunct(t, "&&") || IsPunct(t, "||") ||
         IsPunct(t, "?") || IsPunct(t, ":") || IsPunct(t, "=") ||
         IsIdent(t, "return"))) {
      break;
    }
    if (t.kind == TokKind::kIdent &&
        (t.text == "abs" || t.text == "fabs" || t.text == "hypot")) {
      has_abs = true;
    }
    if (IsPunct(t, "-") && j > 0) {
      const Token& prev = code[j - 1];
      const bool binary = prev.kind == TokKind::kIdent ||
                          prev.kind == TokKind::kNumber ||
                          IsPunct(prev, ")") || IsPunct(prev, "]");
      if (binary) has_minus = true;
    }
  }
  if (has_minus && !has_abs) {
    out->push_back({f.path, code[op_index].line, kRuleFloatCompare,
                    "difference compared against a tolerance without "
                    "std::abs; negative deviations pass silently"});
  }
}

void CheckFloatCompare(const SourceFile& f, std::vector<Finding>* out) {
  if (!FloatCompareRuleApplies(f.path)) return;
  const std::vector<Token>& code = f.code;
  for (std::size_t i = 1; i + 1 < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "==" || t.text == "!=") {
      if (IsFloatNumber(code[i - 1]) || IsFloatNumber(code[i + 1])) {
        out->push_back({f.path, t.line, kRuleFloatCompare,
                        "exact `" + t.text +
                            "` against a floating-point literal; compare "
                            "with an explicit tolerance"});
      }
      continue;
    }
    if (t.text == "<" || t.text == "<=") {
      const Token& rhs = code[i + 1];
      if (!IsFloatNumber(rhs)) continue;
      const double v = std::strtod(rhs.text.c_str(), nullptr);
      if (v > 0.0 && v <= 1e-3) CheckToleranceWithoutAbs(f, i, out);
    }
  }
}

// ---------------------------------------------------------------------------
// R4: include/header hygiene.
// ---------------------------------------------------------------------------

std::string PpSymbol(const std::string& directive_text,
                     std::string_view keyword) {
  // "#ifndef  FOO" → "FOO" (empty when the directive is not `keyword`).
  std::string_view s = directive_text;
  if (!s.empty() && s[0] == '#') s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s[0]))) {
    s.remove_prefix(1);
  }
  if (s.substr(0, keyword.size()) != keyword) return "";
  s.remove_prefix(keyword.size());
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s[0]))) {
    s.remove_prefix(1);
  }
  std::size_t end = 0;
  while (end < s.size() &&
         !std::isspace(static_cast<unsigned char>(s[end]))) {
    ++end;
  }
  return std::string(s.substr(0, end));
}

void CheckHeaderHygiene(const SourceFile& f, std::vector<Finding>* out) {
  if (!IsHeaderPath(f.path)) return;

  const std::string expected = ExpectedHeaderGuard(f.path);
  std::string ifndef_sym;
  std::string define_sym;
  int guard_line = 1;
  for (const Token& d : f.pp) {
    if (ifndef_sym.empty()) {
      ifndef_sym = PpSymbol(d.text, "ifndef");
      guard_line = d.line;
      continue;
    }
    define_sym = PpSymbol(d.text, "define");
    break;  // only the first two directives can form the guard
  }
  if (ifndef_sym.empty() || ifndef_sym != define_sym) {
    out->push_back({f.path, guard_line, kRuleHeaderGuard,
                    "missing include guard; expected `#ifndef " + expected +
                        "` / `#define " + expected + "`"});
  } else if (ifndef_sym != expected) {
    out->push_back({f.path, guard_line, kRuleHeaderGuard,
                    "include guard `" + ifndef_sym + "` should be `" +
                        expected + "`"});
  }

  for (std::size_t i = 0; i + 1 < f.code.size(); ++i) {
    if (IsIdent(f.code[i], "using") && IsIdent(f.code[i + 1], "namespace")) {
      out->push_back({f.path, f.code[i].line, kRuleUsingNamespace,
                      "`using namespace` in a header leaks into every "
                      "includer"});
    }
  }

  if (StartsWith(f.path, "src/")) {
    for (const Token& d : f.pp) {
      if (StartsWith(d.text, "#include") &&
          d.text.find("<iostream>") != std::string::npos) {
        out->push_back({f.path, d.line, kRuleIostreamInclude,
                        "<iostream> in a library header drags iostream "
                        "static initialisers into every TU; use <ostream> "
                        "or move the printing into a .cc"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

struct SuppressionSet {
  bool all = false;
  std::set<std::string> rules;

  bool Covers(const std::string& rule) const {
    return all || rules.count(rule) != 0;
  }
};

void ParseSuppression(const std::string& comment, std::size_t marker_pos,
                      SuppressionSet* set) {
  std::size_t i = marker_pos;
  while (i < comment.size() && comment[i] != '(' && comment[i] != '\n') {
    // Stop at anything that ends the marker word (e.g. `: reason`).
    if (std::isspace(static_cast<unsigned char>(comment[i])) ||
        comment[i] == ':') {
      set->all = true;
      return;
    }
    ++i;
  }
  if (i == comment.size() || comment[i] != '(') {
    set->all = true;
    return;
  }
  const std::size_t close = comment.find(')', i);
  if (close == std::string::npos) {
    set->all = true;
    return;
  }
  std::string rule;
  for (std::size_t j = i + 1; j <= close; ++j) {
    const char c = comment[j];
    if (c == ',' || c == ')') {
      if (!rule.empty()) set->rules.insert(rule);
      rule.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      rule += c;
    }
  }
}

// ---------------------------------------------------------------------------
// Shared token-walk helpers for R5/R7.
// ---------------------------------------------------------------------------

/// Index of the `)` matching the `(` at `open`, or code.size() if the file
/// ends first (unbalanced input never fires a finding).
std::size_t MatchingClose(const std::vector<Token>& code, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < code.size(); ++j) {
    if (IsPunct(code[j], "(")) {
      ++depth;
    } else if (IsPunct(code[j], ")") && --depth == 0) {
      return j;
    }
  }
  return code.size();
}

/// Index just past the `>` matching the `<` at `open`. Maximal munch makes
/// `atomic<vector<int>>`'s double closer a single `>>` token, so `>>`
/// counts as two closers. Returns `open` unchanged when the scan runs into
/// `;`/`{`/EOF first — the `<` was a comparison, not a template list.
std::size_t SkipTemplateArgs(const std::vector<Token>& code,
                             std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < code.size(); ++j) {
    const Token& t = code[j];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "<") {
      ++depth;
    } else if (t.text == ">") {
      if (--depth == 0) return j + 1;
    } else if (t.text == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    } else if (t.text == ";" || t.text == "{") {
      break;
    }
  }
  return open;
}

/// Resolves `recv.op(...)` / `recv[i].op(...)` to the index of `recv`,
/// where `dot` is the `.`/`->` token. Returns code.size() when the
/// receiver is not a plain (possibly indexed) identifier — e.g. a call
/// result — which the callers treat as "not ours".
std::size_t ReceiverIndex(const std::vector<Token>& code, std::size_t dot) {
  if (dot == 0) return code.size();
  std::size_t j = dot - 1;
  if (IsPunct(code[j], "]")) {
    int depth = 0;
    while (true) {
      if (IsPunct(code[j], "]")) ++depth;
      if (IsPunct(code[j], "[") && --depth == 0) break;
      if (j == 0) return code.size();
      --j;
    }
    if (j == 0) return code.size();
    --j;
  }
  return code[j].kind == TokKind::kIdent ? j : code.size();
}

/// Scans variable declarations whose type name satisfies `is_type` —
/// `std::atomic<...> name{...}`, `std::mutex m;`, `std::atomic<T>* p`,
/// comma declarator lists — and records each declared name (and its token
/// index, when `sites` is non-null). Name-based, so a type mentioned as a
/// template *argument* (`lock_guard<std::mutex>`) is naturally skipped:
/// the would-be name slot holds `>` there, not an identifier.
void CollectDecls(const std::vector<Token>& code,
                  bool (*is_type)(const std::string&),
                  std::set<std::string>* names,
                  std::set<std::size_t>* sites) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokKind::kIdent || !is_type(code[i].text)) continue;
    std::size_t j = i + 1;
    if (j < code.size() && IsPunct(code[j], "<")) {
      const std::size_t past = SkipTemplateArgs(code, j);
      if (past == j) continue;  // comparison, not a template list
      j = past;
    }
    while (j < code.size() &&
           (IsPunct(code[j], "*") || IsPunct(code[j], "&") ||
            IsIdent(code[j], "const"))) {
      ++j;
    }
    while (j + 1 < code.size() && code[j].kind == TokKind::kIdent) {
      const Token& after = code[j + 1];
      const bool declarator = IsPunct(after, ";") || IsPunct(after, "{") ||
                              IsPunct(after, "=") || IsPunct(after, ",") ||
                              IsPunct(after, ")") || IsPunct(after, "[");
      if (!declarator) break;
      if (names != nullptr) names->insert(code[j].text);
      if (sites != nullptr) sites->insert(j);
      // `std::atomic<int> a, b;` — chase comma declarators; a comma that
      // instead separates parameters is followed by a *type*, whose own
      // following token is another identifier, failing the check above.
      if (!IsPunct(after, ",")) break;
      j += 2;
    }
  }
}

bool IsAtomicTypeName(const std::string& s) {
  return s == "atomic" || StartsWith(s, "atomic_");
}

bool IsMutexTypeName(const std::string& s) {
  return s == "mutex" || s == "shared_mutex" || s == "timed_mutex" ||
         s == "recursive_mutex" || s == "recursive_timed_mutex";
}

// ---------------------------------------------------------------------------
// R5a/R5b: atomic accesses must name their memory order. Two forms:
// member calls (`x.load()`, `s->depth_.fetch_add(1)`) missing a
// memory_order argument, and operator forms (`x++`, `x += n`, `x = v`)
// which are always implicit seq_cst. Implicit-conversion *reads*
// (`while (!stop_)`) are a known gap: flagging every bare mention of an
// atomic name cannot distinguish a read from binding a reference.
// ---------------------------------------------------------------------------

bool IsAtomicOpName(const std::string& s) {
  return s == "load" || s == "store" || s == "exchange" ||
         s == "fetch_add" || s == "fetch_sub" || s == "fetch_or" ||
         s == "fetch_and" || s == "fetch_xor" ||
         s == "compare_exchange_weak" || s == "compare_exchange_strong" ||
         s == "test_and_set" || s == "clear";
}

bool HasMemoryOrderArg(const std::vector<Token>& code, std::size_t open,
                       std::size_t close) {
  for (std::size_t j = open + 1; j < close; ++j) {
    // Matches `std::memory_order_relaxed` and `std::memory_order::relaxed`.
    if (code[j].kind == TokKind::kIdent &&
        StartsWith(code[j].text, "memory_order")) {
      return true;
    }
  }
  return false;
}

void CheckAtomicOrder(const SourceFile& f, const ProjectIndex& index,
                      std::vector<Finding>* out) {
  const std::vector<Token>& code = f.code;
  // A declaration's initializer is construction, not an access:
  // `std::atomic<int> x = 0;` must not read as an unordered store.
  //
  // The *operator*-form check matches against names declared atomic in
  // THIS file, not the tree-wide index: `total`/`sum`/`count` are atomic
  // in one TU and plain locals in fifty others, and flagging `total = 0`
  // everywhere because one test has an atomic `total` would drown the
  // signal. The member-call form keeps the global index — `.fetch_add()`
  // only exists on atomics, so the method name itself disambiguates.
  std::set<std::string> local_atomics;
  std::set<std::size_t> decl_sites;
  CollectDecls(code, IsAtomicTypeName, &local_atomics, &decl_sites);
  if (EndsWith(f.path, ".cc")) {
    const std::string header = f.path.substr(0, f.path.size() - 3) + ".h";
    const auto it = index.file_atomics.find(header);
    if (it != index.file_atomics.end()) {
      local_atomics.insert(it->second.begin(), it->second.end());
    }
  }

  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokKind::kIdent) continue;

    if (IsAtomicOpName(t.text) && i >= 2 && i + 1 < code.size() &&
        IsPunct(code[i + 1], "(") &&
        (IsPunct(code[i - 1], ".") || IsPunct(code[i - 1], "->"))) {
      const std::size_t recv = ReceiverIndex(code, i - 1);
      if (recv != code.size() &&
          index.atomic_names.count(code[recv].text) != 0) {
        const std::size_t close = MatchingClose(code, i + 1);
        if (!HasMemoryOrderArg(code, i + 1, close)) {
          out->push_back({f.path, t.line, kRuleAtomicOrder,
                          "`" + code[recv].text + "." + t.text +
                              "()` without an explicit std::memory_order "
                              "(implicit seq_cst); name the order, with a "
                              "one-line rationale where relaxed"});
        }
      }
      continue;
    }

    if (local_atomics.count(t.text) == 0) continue;
    if (decl_sites.count(i) != 0) continue;
    // A dot-receiver means "field of a value" — snapshot structs mirror
    // live counters' names (`snap.processed`), and those plain fields are
    // not the atomics. `->` stays in scope: it reaches the live object.
    if (i > 0 && IsPunct(code[i - 1], ".")) continue;
    // An identifier right after a type-ish token is a *declaration* of a
    // same-named plain variable (`std::uint64_t count = 0;` in a snapshot
    // struct), whose initializer is not a store to the atomic.
    if (i > 0 && (code[i - 1].kind == TokKind::kIdent ||
                  IsPunct(code[i - 1], ">") || IsPunct(code[i - 1], ">>") ||
                  IsPunct(code[i - 1], "*") || IsPunct(code[i - 1], "&"))) {
      continue;
    }

    const Token* next = i + 1 < code.size() ? &code[i + 1] : nullptr;
    bool pre_rmw = false;
    {
      std::size_t head = i;
      while (head >= 2 && IsPunct(code[head - 1], "->") &&
             code[head - 2].kind == TokKind::kIdent) {
        head -= 2;
      }
      pre_rmw = head > 0 && (IsPunct(code[head - 1], "++") ||
                             IsPunct(code[head - 1], "--"));
    }
    const bool post_rmw =
        next != nullptr && (IsPunct(*next, "++") || IsPunct(*next, "--"));
    const bool compound =
        next != nullptr &&
        (IsPunct(*next, "+=") || IsPunct(*next, "-=") ||
         IsPunct(*next, "|=") || IsPunct(*next, "&=") || IsPunct(*next, "^="));
    if (pre_rmw || post_rmw || compound) {
      out->push_back({f.path, t.line, kRuleAtomicOrder,
                      "bare RMW operator on std::atomic `" + t.text +
                          "` is an implicit seq_cst read-modify-write; use "
                          "fetch_add/fetch_sub with an explicit order"});
      continue;
    }
    if (next != nullptr && IsPunct(*next, "=")) {
      out->push_back({f.path, t.line, kRuleAtomicOrder,
                      "bare `=` on std::atomic `" + t.text +
                          "` is an implicit seq_cst store; use .store() "
                          "with an explicit order"});
    }
  }
}

// ---------------------------------------------------------------------------
// R5c: naked .lock()/.unlock() on a known mutex. A guard object's own
// .lock()/.unlock() (e.g. on a std::unique_lock variable) is fine — the
// receiver must be an indexed mutex name to fire.
// ---------------------------------------------------------------------------

void CheckNakedLock(const SourceFile& f, const ProjectIndex& index,
                    std::vector<Finding>* out) {
  const std::vector<Token>& code = f.code;
  for (std::size_t i = 2; i + 1 < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokKind::kIdent) continue;
    if (t.text != "lock" && t.text != "unlock" && t.text != "try_lock") {
      continue;
    }
    if (!IsPunct(code[i + 1], "(")) continue;
    if (!IsPunct(code[i - 1], ".") && !IsPunct(code[i - 1], "->")) continue;
    const std::size_t recv = ReceiverIndex(code, i - 1);
    if (recv == code.size() ||
        index.mutex_names.count(code[recv].text) == 0) {
      continue;
    }
    out->push_back({f.path, t.line, kRuleNakedLock,
                    "naked `" + code[recv].text + "." + t.text +
                        "()`; acquire mutexes through std::lock_guard/"
                        "std::unique_lock so every exit path releases"});
  }
}

// ---------------------------------------------------------------------------
// R6: the layer map and its declared edges. File-granular entries first:
// src/core is one directory but three layers, because its registry half
// (algorithm_spec/detector_config) must see every model and strategy while
// its interface half (component_interfaces/detector.h) must be visible *to*
// them — a single "core" layer would make the DAG cyclic.
// ---------------------------------------------------------------------------

struct LayerMapEntry {
  std::string_view path;  // trailing '/' = whole subtree, else exact file
  std::string_view layer;
};

constexpr LayerMapEntry kLayerMap[] = {
    {"src/core/status.h", "core_api"},
    {"src/core/status.cc", "core_api"},
    {"src/core/types.h", "core_api"},
    {"src/core/training_set.h", "core_ifc"},
    {"src/core/training_set.cc", "core_ifc"},
    {"src/core/component_interfaces.h", "core_ifc"},
    {"src/core/detector.h", "core_ifc"},
    {"src/core/detector.cc", "core_registry"},
    {"src/core/algorithm_spec.h", "core_registry"},
    {"src/core/algorithm_spec.cc", "core_registry"},
    {"src/core/detector_config.h", "core_registry"},
    {"src/common/", "common"},
    {"src/linalg/", "linalg"},
    {"src/stats/", "stats"},
    {"src/metrics/", "metrics"},
    {"src/obs/", "obs"},
    {"src/nn/", "nn"},
    {"src/io/", "io"},
    {"src/data/", "data"},
    {"src/models/", "models"},
    {"src/scoring/", "scoring"},
    {"src/strategies/", "strategies"},
    {"src/harness/", "harness"},
    {"src/net/", "net"},
    {"src/serve/", "serve"},
};

/// Declared edges: `layer` may directly include headers of the
/// space-separated `deps` layers (plus its own). Adding an edge here is a
/// reviewed architecture change; docs/ARCHITECTURE.md §9 carries the
/// matching diagram. Keep each list tight — an edge nobody uses is a
/// liberty nobody audited.
struct LayerRule {
  std::string_view layer;
  std::string_view deps;
};

constexpr LayerRule kLayerEdges[] = {
    {"common", ""},
    {"linalg", "common"},
    {"stats", "common"},
    {"metrics", "common"},
    {"obs", "common"},
    {"core_api", "common linalg"},
    {"nn", "common linalg"},
    {"io", "common linalg core_api"},
    {"core_ifc", "common linalg io core_api"},
    {"data", "common linalg core_api"},
    {"models", "common linalg nn io core_api core_ifc"},
    {"scoring", "common linalg stats core_api core_ifc"},
    {"strategies", "common stats core_api core_ifc"},
    {"core_registry",
     "common obs core_api core_ifc models scoring strategies"},
    {"harness", "common metrics obs data core_api core_ifc core_registry"},
    {"net", "common io obs core_api"},
    {"serve",
     "common data io obs net harness core_api core_ifc core_registry"},
};

bool LayerAllows(std::string_view layer, std::string_view dep) {
  for (const LayerRule& rule : kLayerEdges) {
    if (rule.layer != layer) continue;
    std::string_view deps = rule.deps;
    while (!deps.empty()) {
      const std::size_t space = deps.find(' ');
      const std::string_view head = deps.substr(0, space);
      if (head == dep) return true;
      if (space == std::string_view::npos) break;
      deps.remove_prefix(space + 1);
    }
    return false;
  }
  return false;
}

/// `#include "src/foo/bar.h"` → `src/foo/bar.h`; empty for `<...>` and
/// non-include directives.
std::string QuotedInclude(const std::string& directive) {
  if (directive.find("include") == std::string::npos) return "";
  const std::size_t a = directive.find('"');
  if (a == std::string::npos) return "";
  const std::size_t b = directive.find('"', a + 1);
  if (b == std::string::npos) return "";
  return directive.substr(a + 1, b - a - 1);
}

void CheckLayering(const SourceFile& f, std::vector<Finding>* out) {
  if (!StartsWith(f.path, "src/")) return;
  const std::string layer = LayerOf(f.path);
  if (layer.empty()) {
    out->push_back({f.path, 1, kRuleLayering,
                    "src/ path not covered by the layer map; new "
                    "directories must declare a layer in tools/lint/"
                    "rules.cc (kLayerMap) and docs/ARCHITECTURE.md §9"});
    return;
  }
  for (const Token& d : f.pp) {
    const std::string target = QuotedInclude(d.text);
    if (!StartsWith(target, "src/")) continue;
    const std::string target_layer = LayerOf(target);
    if (target_layer.empty()) {
      out->push_back({f.path, d.line, kRuleLayering,
                      "`" + target + "` is not covered by the layer map"});
      continue;
    }
    if (target_layer == layer || LayerAllows(layer, target_layer)) continue;
    out->push_back({f.path, d.line, kRuleLayering,
                    "layer `" + layer + "` may not include `" + target +
                        "` (layer `" + target_layer +
                        "`); declared edges live in tools/lint/rules.cc "
                        "(kLayerEdges)"});
  }
}

// ---------------------------------------------------------------------------
// Strongly connected components (Kosaraju), shared by the lock-order and
// include-graph cycle checks. Graphs here are tiny (dozens of nodes), so
// recursive DFS over std::map adjacency is plenty.
// ---------------------------------------------------------------------------

using Graph = std::map<std::string, std::set<std::string>>;

void FinishOrder(const std::string& n, const Graph& adj,
                 std::set<std::string>* visited,
                 std::vector<std::string>* order) {
  if (!visited->insert(n).second) return;
  const auto it = adj.find(n);
  if (it != adj.end()) {
    for (const std::string& m : it->second) {
      FinishOrder(m, adj, visited, order);
    }
  }
  order->push_back(n);
}

void AssignComponent(const std::string& n, const Graph& radj,
                     std::set<std::string>* visited,
                     std::vector<std::string>* component) {
  if (!visited->insert(n).second) return;
  component->push_back(n);
  const auto it = radj.find(n);
  if (it != radj.end()) {
    for (const std::string& m : it->second) {
      AssignComponent(m, radj, visited, component);
    }
  }
}

/// Every cycle-bearing SCC of `adj`: components of size > 1, plus
/// self-loops. Each component's nodes come back sorted for deterministic
/// messages.
std::vector<std::vector<std::string>> CyclicComponents(const Graph& adj) {
  std::set<std::string> nodes;
  Graph radj;
  for (const auto& [from, tos] : adj) {
    nodes.insert(from);
    for (const std::string& to : tos) {
      nodes.insert(to);
      radj[to].insert(from);
    }
  }
  std::vector<std::string> order;
  std::set<std::string> visited;
  for (const std::string& n : nodes) FinishOrder(n, adj, &visited, &order);
  visited.clear();
  std::vector<std::vector<std::string>> cycles;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (visited.count(*it) != 0) continue;
    std::vector<std::string> component;
    AssignComponent(*it, radj, &visited, &component);
    std::sort(component.begin(), component.end());
    const bool self_loop =
        component.size() == 1 &&
        adj.count(component[0]) != 0 &&
        adj.at(component[0]).count(component[0]) != 0;
    if (component.size() > 1 || self_loop) cycles.push_back(component);
  }
  std::sort(cycles.begin(), cycles.end());
  return cycles;
}

// ---------------------------------------------------------------------------
// R7: discarded core::Status results.
// ---------------------------------------------------------------------------

void CheckUncheckedStatus(const SourceFile& f, const ProjectIndex& index,
                          std::vector<Finding>* out) {
  const std::vector<Token>& code = f.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokKind::kIdent || i + 1 >= code.size() ||
        !IsPunct(code[i + 1], "(")) {
      continue;
    }
    if (index.status_fns.count(t.text) == 0) continue;

    // Walk to the head of the qualifier chain: `fleet.SaveState` → `fleet`,
    // `Get(i)->Save` hops the call group to `Get`. An unresolvable head
    // (receiver is itself an expression we can't classify) counts as used.
    std::size_t head = i;
    bool resolvable = true;
    while (head >= 2) {
      const Token& q = code[head - 1];
      if (!IsPunct(q, ".") && !IsPunct(q, "->") && !IsPunct(q, "::")) break;
      const Token& before = code[head - 2];
      if (before.kind == TokKind::kIdent) {
        head -= 2;
        continue;
      }
      if (IsPunct(before, ")") || IsPunct(before, "]")) {
        int depth = 0;
        std::size_t k = head - 2;
        while (true) {
          const Token& b = code[k];
          if (IsPunct(b, ")") || IsPunct(b, "]")) {
            ++depth;
          } else if (IsPunct(b, "(") || IsPunct(b, "[")) {
            if (--depth == 0) break;
          }
          if (k == 0) break;
          --k;
        }
        if (depth != 0 || k == 0 || code[k - 1].kind != TokKind::kIdent) {
          resolvable = false;
          break;
        }
        head = k - 1;
        continue;
      }
      break;
    }
    if (!resolvable) continue;

    // The call is a discard only when it is the whole statement: chain
    // head at a statement boundary AND `;` right after the closing paren.
    bool stmt_start = head == 0;
    if (!stmt_start) {
      const Token& p = code[head - 1];
      if (IsPunct(p, ";") || IsPunct(p, "{") || IsPunct(p, "}") ||
          IsIdent(p, "else") || IsIdent(p, "do")) {
        stmt_start = true;
      } else if (IsPunct(p, ")")) {
        // Two shapes end in `)`: a `(void)` discard-cast (intentional,
        // skip) and an `if (...)`/loop head (the call is the unguarded
        // body — a discard).
        int depth = 0;
        std::size_t k = head - 1;
        while (true) {
          if (IsPunct(code[k], ")")) ++depth;
          if (IsPunct(code[k], "(") && --depth == 0) break;
          if (k == 0) break;
          --k;
        }
        const bool void_cast = depth == 0 && k + 2 == head - 1 &&
                               IsIdent(code[k + 1], "void");
        if (!void_cast && depth == 0 && k > 0 &&
            (IsIdent(code[k - 1], "if") || IsIdent(code[k - 1], "while") ||
             IsIdent(code[k - 1], "for") || IsIdent(code[k - 1], "switch"))) {
          stmt_start = true;
        }
      }
    }
    if (!stmt_start) continue;

    const std::size_t close = MatchingClose(code, i + 1);
    if (close + 1 >= code.size() || !IsPunct(code[close + 1], ";")) continue;
    out->push_back({f.path, t.line, kRuleUncheckedStatus,
                    "result of `" + t.text +
                        "()` (returns core::Status) is discarded; handle "
                        "it, or `(void)` it with a reason comment"});
  }
}

/// Position of a *live* suppression marker: NOLINT-STREAMAD as the
/// comment's first word (`// NOLINT-STREAMAD(...)`). Prose that merely
/// mentions the marker — backticked docs, the lint tool's own sources —
/// neither suppresses nor counts as debt. Returns npos when absent.
std::size_t SuppressionMarkerPos(const std::string& comment) {
  std::size_t i = 0;
  while (i < comment.size() &&
         (comment[i] == '/' || comment[i] == '*' ||
          std::isspace(static_cast<unsigned char>(comment[i])))) {
    ++i;
  }
  constexpr std::string_view kMarker = "NOLINT-STREAMAD";
  if (comment.compare(i, kMarker.size(), kMarker) == 0) return i;
  return std::string::npos;
}

}  // namespace

void IndexFile(const SourceFile& file, ProjectIndex* index) {
  const std::vector<Token>& code = file.code;
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (code[i].kind == TokKind::kIdent && EndsWith(code[i].text, "Into") &&
        code[i].text != "Into" && IsPunct(code[i + 1], "(")) {
      index->into_names.insert(code[i].text);
    }
  }

  CollectDecls(code, IsAtomicTypeName, &index->atomic_names, nullptr);
  CollectDecls(code, IsMutexTypeName, &index->mutex_names, nullptr);
  {
    std::set<std::string>& here = index->file_atomics[file.path];
    CollectDecls(code, IsAtomicTypeName, &here, nullptr);
    if (here.empty()) index->file_atomics.erase(file.path);
  }

  // `core::Status Name(`, `Status Class::Name(`, nested qualifiers — the
  // last identifier before the `(` is the function. `Status::Ok()`-style
  // static-member calls don't match: the token after `Status` is `::`.
  for (std::size_t i = 0; i + 2 < code.size(); ++i) {
    if (!IsIdent(code[i], "Status")) continue;
    std::size_t j = i + 1;
    if (code[j].kind != TokKind::kIdent) continue;
    while (j + 2 < code.size() && IsPunct(code[j + 1], "::") &&
           code[j + 2].kind == TokKind::kIdent) {
      j += 2;
    }
    if (j + 1 < code.size() && IsPunct(code[j + 1], "(")) {
      index->status_fns.insert(code[j].text);
    }
  }
}

std::vector<Finding> AnalyzeFile(const SourceFile& file,
                                 const ProjectIndex& index) {
  std::vector<Finding> findings;
  CheckDeterminism(file, &findings);
  CheckHotAlloc(file, index, &findings);
  CheckFloatCompare(file, &findings);
  CheckHeaderHygiene(file, &findings);
  CheckAtomicOrder(file, index, &findings);
  CheckNakedLock(file, index, &findings);
  CheckLayering(file, &findings);
  CheckUncheckedStatus(file, index, &findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::pair(a.line, std::string_view(a.rule)) <
                     std::pair(b.line, std::string_view(b.rule));
            });
  return findings;
}

std::vector<LockEdge> CollectLockEdges(const SourceFile& file,
                                       const ProjectIndex& index) {
  const std::vector<Token>& code = file.code;
  struct Held {
    std::string name;
    int depth;
  };
  std::vector<LockEdge> edges;
  std::set<std::pair<std::string, std::string>> seen;
  std::vector<Held> stack;
  int depth = 0;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (IsPunct(t, "{")) {
      ++depth;
      continue;
    }
    if (IsPunct(t, "}")) {
      while (!stack.empty() && stack.back().depth == depth) stack.pop_back();
      --depth;
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    if (t.text != "lock_guard" && t.text != "unique_lock" &&
        t.text != "scoped_lock") {
      continue;
    }
    std::size_t j = i + 1;
    if (j < code.size() && IsPunct(code[j], "<")) {
      const std::size_t past = SkipTemplateArgs(code, j);
      if (past == j) continue;
      j = past;
    }
    // `lock_guard<...> name(arg, ...)` — CTAD brace-init also accepted.
    if (j + 1 >= code.size() || code[j].kind != TokKind::kIdent) continue;
    const std::size_t open = j + 1;
    const bool paren = IsPunct(code[open], "(");
    if (!paren && !IsPunct(code[open], "{")) continue;
    const std::string_view close_tok = paren ? ")" : "}";
    const std::string_view open_tok = paren ? "(" : "{";

    // Split the argument list at top-level commas; each argument's mutex
    // is its last identifier (`shard->results_mutex` → `results_mutex`,
    // `*mu` → `mu`). Lock-tag arguments (std::defer_lock etc.) and
    // receivers we don't recognise as mutexes are skipped.
    std::vector<std::string> acquired;
    int nest = 1;
    std::string last_ident;
    std::size_t k = open + 1;
    for (; k < code.size() && nest > 0; ++k) {
      const Token& a = code[k];
      if (a.kind == TokKind::kPunct) {
        if (a.text == open_tok || a.text == "(" || a.text == "[") ++nest;
        if (a.text == close_tok || a.text == ")" || a.text == "]") --nest;
        if (nest == 0 || (nest == 1 && a.text == ",")) {
          if (!last_ident.empty() && last_ident != "defer_lock" &&
              last_ident != "adopt_lock" && last_ident != "try_to_lock" &&
              index.mutex_names.count(last_ident) != 0) {
            acquired.push_back(last_ident);
          }
          last_ident.clear();
          continue;
        }
      }
      if (a.kind == TokKind::kIdent) last_ident = a.text;
    }
    for (const std::string& m : acquired) {
      for (const Held& h : stack) {
        if (h.name == m) continue;
        if (!seen.insert({h.name, m}).second) continue;
        edges.push_back({h.name, m, file.path, t.line});
      }
      stack.push_back({m, depth});
    }
  }
  return edges;
}

std::vector<Finding> AnalyzeTree(const std::vector<SourceFile>& files,
                                 const ProjectIndex& index) {
  std::vector<Finding> out;

  // R5: merge every TU's acquisition edges; cycles are lock-order
  // inversions waiting for the right interleaving.
  Graph lock_graph;
  std::map<std::pair<std::string, std::string>, std::pair<std::string, int>>
      lock_site;
  for (const SourceFile& f : files) {
    for (const LockEdge& e : CollectLockEdges(f, index)) {
      lock_graph[e.held].insert(e.acquired);
      const auto key = std::pair(e.held, e.acquired);
      const auto site = std::pair(e.file, e.line);
      const auto it = lock_site.find(key);
      if (it == lock_site.end() || site < it->second) lock_site[key] = site;
    }
  }
  for (const std::vector<std::string>& cycle : CyclicComponents(lock_graph)) {
    std::string members;
    std::string witness;
    std::pair<std::string, int> first_site{"", 0};
    for (const std::string& a : cycle) {
      members += (members.empty() ? "" : ", ") + a;
      for (const std::string& b : cycle) {
        const auto it = lock_site.find({a, b});
        if (it == lock_site.end()) continue;
        witness += "; " + a + " -> " + b + " at " + it->second.first + ":" +
                   std::to_string(it->second.second);
        if (first_site.first.empty() || it->second < first_site) {
          first_site = it->second;
        }
      }
    }
    out.push_back({first_site.first, first_site.second, kRuleLockOrder,
                   "lock-order cycle among mutexes {" + members + "}" +
                       witness + "; acquire in one global order"});
  }

  // R6 (tree half): file-level include cycles under src/. The per-file
  // layer check can't see these when the cycle stays inside one layer.
  std::set<std::string> src_paths;
  for (const SourceFile& f : files) {
    if (StartsWith(f.path, "src/")) src_paths.insert(f.path);
  }
  Graph include_graph;
  std::map<std::pair<std::string, std::string>, int> include_line;
  for (const SourceFile& f : files) {
    if (src_paths.count(f.path) == 0) continue;
    for (const Token& d : f.pp) {
      const std::string target = QuotedInclude(d.text);
      if (target.empty() || src_paths.count(target) == 0) continue;
      include_graph[f.path].insert(target);
      include_line.emplace(std::pair(f.path, target), d.line);
    }
  }
  for (const std::vector<std::string>& cycle :
       CyclicComponents(include_graph)) {
    std::string members;
    for (const std::string& p : cycle) {
      members += (members.empty() ? "" : " -> ") + p;
    }
    int line = 1;
    const auto it = include_line.lower_bound({cycle[0], ""});
    if (it != include_line.end() && it->first.first == cycle[0]) {
      line = it->second;
    }
    out.push_back({cycle[0], line, kRuleLayering,
                   "include cycle under src/: {" + members +
                       "}; break it or split the shared piece downward"});
  }

  // Self-check: the declared layer DAG itself must be acyclic, or the
  // per-file edge checks prove nothing.
  Graph layer_graph;
  for (const LayerRule& rule : kLayerEdges) {
    std::string_view deps = rule.deps;
    while (!deps.empty()) {
      const std::size_t space = deps.find(' ');
      layer_graph[std::string(rule.layer)].insert(
          std::string(deps.substr(0, space)));
      if (space == std::string_view::npos) break;
      deps.remove_prefix(space + 1);
    }
  }
  for (const std::vector<std::string>& cycle : CyclicComponents(layer_graph)) {
    std::string members;
    for (const std::string& l : cycle) {
      members += (members.empty() ? "" : ", ") + l;
    }
    out.push_back({"tools/lint/rules.cc", 1, kRuleLayering,
                   "declared layer DAG is cyclic ({" + members +
                       "}); fix kLayerEdges"});
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  return out;
}

std::vector<Finding> ApplySuppressions(const SourceFile& file,
                                       std::vector<Finding> findings) {
  static constexpr std::string_view kMarker = "NOLINT-STREAMAD";
  static constexpr std::string_view kNextLine = "NOLINT-STREAMAD-NEXTLINE";
  std::map<int, SuppressionSet> by_line;
  for (const Token& c : file.comments) {
    const std::size_t pos = SuppressionMarkerPos(c.text);
    if (pos == std::string::npos) continue;
    const bool next_line =
        c.text.compare(pos, kNextLine.size(), kNextLine) == 0;
    const int target = next_line ? c.line + 1 : c.line;
    ParseSuppression(c.text, pos + (next_line ? kNextLine.size()
                                              : kMarker.size()),
                     &by_line[target]);
  }
  if (by_line.empty()) return findings;

  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& f : findings) {
    const auto it = by_line.find(f.line);
    if (it != by_line.end() && it->second.Covers(f.rule)) continue;
    kept.push_back(std::move(f));
  }
  return kept;
}

void CountSuppressions(const SourceFile& file,
                       std::map<std::string, int>* counts) {
  static constexpr std::string_view kMarker = "NOLINT-STREAMAD";
  static constexpr std::string_view kNextLine = "NOLINT-STREAMAD-NEXTLINE";
  for (const Token& c : file.comments) {
    const std::size_t pos = SuppressionMarkerPos(c.text);
    if (pos == std::string::npos) continue;
    const bool next_line =
        c.text.compare(pos, kNextLine.size(), kNextLine) == 0;
    SuppressionSet set;
    ParseSuppression(c.text, pos + (next_line ? kNextLine.size()
                                              : kMarker.size()),
                     &set);
    if (set.all) {
      ++(*counts)["(any)"];
    } else {
      for (const std::string& rule : set.rules) ++(*counts)[rule];
    }
  }
}

std::string LayerOf(const std::string& rel_path) {
  for (const LayerMapEntry& entry : kLayerMap) {
    const bool subtree = entry.path.back() == '/';
    const bool match =
        subtree ? StartsWith(rel_path, entry.path) : rel_path == entry.path;
    if (match) return std::string(entry.layer);
  }
  return "";
}

std::string ExpectedHeaderGuard(const std::string& rel_path) {
  std::string_view p = rel_path;
  if (p.substr(0, 4) == "src/") p.remove_prefix(4);
  std::string guard = "STREAMAD_";
  for (char c : p) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

}  // namespace streamad::lint
