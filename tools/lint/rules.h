#ifndef STREAMAD_TOOLS_LINT_RULES_H_
#define STREAMAD_TOOLS_LINT_RULES_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/token.h"

namespace streamad::lint {

/// One diagnostic. `rule` is the stable machine name used by
/// `NOLINT-STREAMAD(rule)` suppressions and the JSON report.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Rule identifiers (R1–R7 of the lint spec, see docs/ARCHITECTURE.md §9).
inline constexpr char kRuleDeterminism[] = "determinism";
inline constexpr char kRuleHotAlloc[] = "hot-alloc";
inline constexpr char kRuleFloatCompare[] = "float-compare";
inline constexpr char kRuleHeaderGuard[] = "header-guard";
inline constexpr char kRuleUsingNamespace[] = "using-namespace";
inline constexpr char kRuleIostreamInclude[] = "iostream-include";
// R5: concurrency discipline.
inline constexpr char kRuleAtomicOrder[] = "atomic-order";
inline constexpr char kRuleNakedLock[] = "naked-lock";
inline constexpr char kRuleLockOrder[] = "lock-order";
// R6: layering.
inline constexpr char kRuleLayering[] = "layering";
// R7: dropped core::Status results.
inline constexpr char kRuleUncheckedStatus[] = "unchecked-status";
// Meta-rule: NOLINT-STREAMAD debt grew past the checked-in baseline.
inline constexpr char kRuleSuppressionBudget[] = "suppression-budget";

/// One directed edge of a translation unit's mutex-acquisition graph:
/// while a guard on `held` was lexically active, a guard on `acquired`
/// was constructed at `file:line`. Edges from every TU merge into one
/// tree-wide graph whose cycles are lock-order-inversion candidates.
struct LockEdge {
  std::string held;
  std::string acquired;
  std::string file;
  int line = 0;
};

/// Cross-file knowledge the rules need, built in pass 1 over every scanned
/// file and consumed by pass 2:
///  - `into_names`: project functions with an allocation-free
///    `<Name>Into(..., out)` form (R2 suggests them in hot regions).
///  - `atomic_names`: variables declared `std::atomic<...>` (incl.
///    pointees and vectors of atomics) — R5 demands explicit orders on
///    their loads/stores/RMWs and bans bare `++`/`--`/`+=` on them.
///  - `mutex_names`: variables declared `std::mutex` (and shared/timed/
///    recursive variants) — R5 bans naked `.lock()`/`.unlock()` on them.
///  - `status_fns`: functions declared to return `core::Status` — R7
///    flags call statements that discard the result.
struct ProjectIndex {
  std::set<std::string> into_names;   // e.g. "MatMulInto", "TransformInto"
  std::set<std::string> atomic_names; // e.g. "processed_", "submit_seq"
  std::set<std::string> mutex_names;  // e.g. "sessions_mutex_", "mutex_"
  std::set<std::string> status_fns;   // e.g. "SaveState", "CreateSession"
  // Atomic declarations per file. The operator-form R5 check scopes its
  // name matching to the file under analysis plus its paired header
  // (`x.cc` sees `x.h`): `total`/`count` are atomic in one TU and plain
  // locals in fifty others, so tree-wide name matching would drown the
  // signal in false stores.
  std::map<std::string, std::set<std::string>> file_atomics;
};

/// Adds `file`'s contribution to the cross-TU index (pass 1).
void IndexFile(const SourceFile& file, ProjectIndex* index);

/// Runs every applicable per-file rule on one file and returns raw
/// findings, *before* NOLINT suppression. Applicability is path-based:
///  - determinism: `src/**` except the data-driven allowlist in rules.cc
///  - hot-alloc:   regions below a `// STREAMAD_HOT` marker, any file
///  - float-compare: everywhere except `tests/**`
///  - header hygiene: `*.h` everywhere; the <iostream> ban only in `src/`
///  - atomic-order / naked-lock: every scanned directory
///  - layering (per-file: undeclared layer edges): `src/**` only
///  - unchecked-status: every scanned directory
std::vector<Finding> AnalyzeFile(const SourceFile& file,
                                 const ProjectIndex& index);

/// Extracts `file`'s mutex-acquisition edges (R5). Exposed separately so
/// the tree-level cycle check and the unit tests share the extractor.
std::vector<LockEdge> CollectLockEdges(const SourceFile& file,
                                       const ProjectIndex& index);

/// Tree-level pass over every scanned file at once:
///  - R5: merges all per-TU lock edges and reports every lock-order cycle
///    (one finding per cycle, attributed to its lexically first edge).
///  - R6: reports include cycles among the scanned `src/` files.
/// Per-file rules stay in `AnalyzeFile`; this only covers properties no
/// single file can witness.
std::vector<Finding> AnalyzeTree(const std::vector<SourceFile>& files,
                                 const ProjectIndex& index);

/// Drops findings suppressed by a `NOLINT-STREAMAD` comment on the same
/// line or a `NOLINT-STREAMAD-NEXTLINE` comment on the previous line.
/// Both forms accept an optional parenthesised comma-separated rule list;
/// without one they suppress every rule on that line. Text after the
/// closing paren (the conventional `: reason`) is ignored.
std::vector<Finding> ApplySuppressions(const SourceFile& file,
                                       std::vector<Finding> findings);

/// Counts `file`'s NOLINT-STREAMAD markers into `*counts`, keyed by rule
/// name; a marker without a rule list counts under "(any)". One comment
/// naming N rules contributes N entries — debt is per suppressed rule,
/// not per comment. Feeds the `--suppression-baseline` budget gate.
void CountSuppressions(const SourceFile& file,
                       std::map<std::string, int>* counts);

/// Expected include guard for a repo-relative header path. The repo
/// convention drops a leading `src/` ("src/linalg/matrix.h" →
/// `STREAMAD_LINALG_MATRIX_H_`) and keeps every other top directory
/// ("bench/bench_common.h" → `STREAMAD_BENCH_BENCH_COMMON_H_`).
std::string ExpectedHeaderGuard(const std::string& rel_path);

/// The layer a repo-relative `src/` path belongs to, per the checked-in
/// layer DAG (empty for non-src paths, which are outside the layering
/// rule). Exposed for the tests.
std::string LayerOf(const std::string& rel_path);

}  // namespace streamad::lint

#endif  // STREAMAD_TOOLS_LINT_RULES_H_
