#ifndef STREAMAD_TOOLS_LINT_RULES_H_
#define STREAMAD_TOOLS_LINT_RULES_H_

#include <set>
#include <string>
#include <vector>

#include "tools/lint/token.h"

namespace streamad::lint {

/// One diagnostic. `rule` is the stable machine name used by
/// `NOLINT-STREAMAD(rule)` suppressions and the JSON report.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Rule identifiers (R1–R4 of the lint spec, see docs/ARCHITECTURE.md §9).
inline constexpr char kRuleDeterminism[] = "determinism";
inline constexpr char kRuleHotAlloc[] = "hot-alloc";
inline constexpr char kRuleFloatCompare[] = "float-compare";
inline constexpr char kRuleHeaderGuard[] = "header-guard";
inline constexpr char kRuleUsingNamespace[] = "using-namespace";
inline constexpr char kRuleIostreamInclude[] = "iostream-include";

/// Cross-file knowledge the rules need: today, the set of project functions
/// that have an allocation-free `<Name>Into(..., out)` form. Built in a
/// first pass over every scanned file, consumed by the hot-alloc rule
/// (`Matrix m = MatMul(a, b)` in a hot region → "use MatMulInto").
struct ProjectIndex {
  std::set<std::string> into_names;  // e.g. "MatMulInto", "TransformInto"
};

/// Adds every `<Name>Into(`-shaped call/declaration in `file` to the index.
void IndexFile(const SourceFile& file, ProjectIndex* index);

/// Runs every applicable rule on one file and returns raw findings,
/// *before* NOLINT suppression. Applicability is path-based:
///  - determinism: `src/**` except `src/common/rng.{h,cc}` and `src/obs/**`
///  - hot-alloc:   regions below a `// STREAMAD_HOT` marker, any file
///  - float-compare: everywhere except `tests/**`
///  - header hygiene: `*.h` everywhere; the <iostream> ban only in `src/`
std::vector<Finding> AnalyzeFile(const SourceFile& file,
                                 const ProjectIndex& index);

/// Drops findings suppressed by a `NOLINT-STREAMAD` comment on the same
/// line or a `NOLINT-STREAMAD-NEXTLINE` comment on the previous line.
/// Both forms accept an optional parenthesised comma-separated rule list;
/// without one they suppress every rule on that line. Text after the
/// closing paren (the conventional `: reason`) is ignored.
std::vector<Finding> ApplySuppressions(const SourceFile& file,
                                       std::vector<Finding> findings);

/// Expected include guard for a repo-relative header path. The repo
/// convention drops a leading `src/` ("src/linalg/matrix.h" →
/// `STREAMAD_LINALG_MATRIX_H_`) and keeps every other top directory
/// ("bench/bench_common.h" → `STREAMAD_BENCH_BENCH_COMMON_H_`).
std::string ExpectedHeaderGuard(const std::string& rel_path);

}  // namespace streamad::lint

#endif  // STREAMAD_TOOLS_LINT_RULES_H_
