// streamad_lint: project-specific static analysis for the streamad tree.
//
// Usage:
//   streamad_lint [--root=DIR] [--format=text|json] [file...]
//
// With no file arguments the default directories (src tools tests bench
// examples) are scanned recursively for .h/.cc, excluding lint fixtures.
// Exit status: 0 clean, 1 findings, 2 usage or I/O error.
//
// Rules (suppress with `// NOLINT-STREAMAD(rule)` on the finding line or
// `// NOLINT-STREAMAD-NEXTLINE(rule)` on the line above; always give a
// reason after a colon):
//   determinism       R1  entropy/wall-clock sources outside rng/obs
//   hot-alloc         R2  allocation in a // STREAMAD_HOT region
//   float-compare     R3  exact float ==/!=, abs-free tolerance checks
//   header-guard      R4  guard must be STREAMAD_<PATH>_H_
//   using-namespace   R4  `using namespace` in a header
//   iostream-include  R4  <iostream> in a src/ header

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "tools/lint/driver.h"

int main(int argc, char** argv) {
  streamad::lint::RunOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      options.root = arg.substr(7);
    } else if (arg == "--format=json") {
      options.format = streamad::lint::OutputFormat::kJson;
    } else if (arg == "--format=text") {
      options.format = streamad::lint::OutputFormat::kText;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: streamad_lint [--root=DIR] [--format=text|json] "
                   "[file...]\n");
      return 2;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "streamad_lint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      options.files.push_back(arg);
    }
  }

  const streamad::lint::RunResult result = streamad::lint::RunLint(options);
  streamad::lint::WriteReport(result, options.format, std::cout);
  return result.findings.empty() ? 0 : 1;
}
