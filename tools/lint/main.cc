// streamad_lint: project-specific static analysis for the streamad tree.
//
// Usage:
//   streamad_lint [--root=DIR] [--format=text|json]
//                 [--suppression-baseline=FILE]
//                 [--write-suppression-baseline=FILE] [file...]
//
// With no file arguments the default directories (src tools tests bench
// examples) are scanned recursively for .h/.cc, excluding lint fixtures.
// Exit status: 0 clean, 1 findings, 2 usage or I/O error.
//
// Rules (suppress with `// NOLINT-STREAMAD(rule)` on the finding line or
// `// NOLINT-STREAMAD-NEXTLINE(rule)` on the line above; always give a
// reason after a colon):
//   determinism       R1  entropy/wall-clock sources outside rng/obs/net
//   hot-alloc         R2  allocation in a // STREAMAD_HOT region
//   float-compare     R3  exact float ==/!=, abs-free tolerance checks
//   header-guard      R4  guard must be STREAMAD_<PATH>_H_
//   using-namespace   R4  `using namespace` in a header
//   iostream-include  R4  <iostream> in a src/ header
//   atomic-order      R5  atomic access without an explicit memory_order
//   naked-lock        R5  .lock()/.unlock() on a mutex outside RAII
//   lock-order        R5  cycle in the tree-wide mutex-acquisition graph
//   layering          R6  include edge not in the declared layer DAG, or
//                         an include cycle under src/
//   unchecked-status  R7  discarded core::Status result
//   suppression-budget    NOLINT debt above the checked-in baseline
//
// `--suppression-baseline=FILE` gates debt: NOLINT-STREAMAD counts per
// rule must not exceed FILE (tools/lint/suppression_baseline.txt in CI).
// `--write-suppression-baseline=FILE` regenerates it from the live tree.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "tools/lint/driver.h"

int main(int argc, char** argv) {
  streamad::lint::RunOptions options;
  std::string baseline_path;
  std::string write_baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      options.root = arg.substr(7);
    } else if (arg == "--format=json") {
      options.format = streamad::lint::OutputFormat::kJson;
    } else if (arg == "--format=text") {
      options.format = streamad::lint::OutputFormat::kText;
    } else if (arg.rfind("--suppression-baseline=", 0) == 0) {
      baseline_path = arg.substr(23);
    } else if (arg.rfind("--write-suppression-baseline=", 0) == 0) {
      write_baseline_path = arg.substr(29);
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: streamad_lint [--root=DIR] [--format=text|json] "
                   "[--suppression-baseline=FILE] "
                   "[--write-suppression-baseline=FILE] [file...]\n");
      return 2;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "streamad_lint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      options.files.push_back(arg);
    }
  }

  streamad::lint::RunResult result = streamad::lint::RunLint(options);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::fprintf(stderr, "streamad_lint: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    streamad::lint::WriteSuppressionBaseline(result.suppressions, out);
  }

  if (!baseline_path.empty()) {
    bool ok = false;
    const std::map<std::string, int> baseline =
        streamad::lint::LoadSuppressionBaseline(baseline_path, &ok);
    if (!ok) {
      std::fprintf(stderr, "streamad_lint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::vector<streamad::lint::Finding> over =
        streamad::lint::CheckSuppressionBudget(result.suppressions, baseline,
                                               baseline_path);
    result.findings.insert(result.findings.end(), over.begin(), over.end());
  }

  streamad::lint::WriteReport(result, options.format, std::cout);
  return result.findings.empty() ? 0 : 1;
}
